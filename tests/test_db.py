"""Integration tests for the DB facade: CRUD, flush, compaction, recovery."""

import pytest

from repro.env.mem import MemEnv
from repro.errors import InvalidArgumentError, IOError_
from repro.lsm.db import DB
from repro.lsm.options import Options, ReadOptions, WriteOptions
from repro.lsm.write_batch import WriteBatch


def _small_options(**overrides) -> Options:
    defaults = dict(
        env=MemEnv(),
        write_buffer_size=4 * 1024,
        max_bytes_for_level_base=16 * 1024,
        target_file_size=8 * 1024,
        block_size=1024,
        max_background_jobs=2,
    )
    defaults.update(overrides)
    return Options(**defaults)


def test_put_get_delete():
    with DB("/db", _small_options()) as db:
        db.put(b"key", b"value")
        assert db.get(b"key") == b"value"
        db.delete(b"key")
        assert db.get(b"key") is None
        assert db.get(b"never-written") is None


def test_overwrite():
    with DB("/db", _small_options()) as db:
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"


def test_write_batch_atomicity():
    with DB("/db", _small_options()) as db:
        batch = WriteBatch()
        batch.put(b"a", b"1").put(b"b", b"2").delete(b"a")
        db.write(batch)
        assert db.get(b"a") is None
        assert db.get(b"b") == b"2"


def test_empty_batch_noop():
    with DB("/db", _small_options()) as db:
        db.write(WriteBatch())
        assert db.snapshot() == 0


def test_values_survive_flush():
    with DB("/db", _small_options()) as db:
        for i in range(200):
            db.put(b"key-%04d" % i, b"value-%04d" % i)
        db.flush()
        assert db.num_files_at_level(0) >= 1
        for i in range(0, 200, 17):
            assert db.get(b"key-%04d" % i) == b"value-%04d" % i


def test_deletes_survive_flush_and_compaction():
    with DB("/db", _small_options()) as db:
        for i in range(100):
            db.put(b"key-%04d" % i, b"x" * 50)
        db.flush()
        for i in range(0, 100, 2):
            db.delete(b"key-%04d" % i)
        db.compact_range()
        for i in range(100):
            expected = None if i % 2 == 0 else b"x" * 50
            assert db.get(b"key-%04d" % i) == expected


def test_compaction_reduces_l0():
    options = _small_options(level0_file_num_compaction_trigger=2)
    with DB("/db", options) as db:
        for i in range(3000):
            db.put(b"key-%05d" % (i % 600), b"v" * 60)
        db.compact_range()
        assert db.num_files_at_level(0) < 2
        total_files = sum(
            db.num_files_at_level(level) for level in range(options.num_levels)
        )
        assert total_files >= 1
        for i in range(600):
            assert db.get(b"key-%05d" % i) == b"v" * 60


def test_recovery_from_wal_after_close():
    env = MemEnv()
    db = DB("/db", _small_options(env=env))
    db.put(b"persisted", b"yes")
    db.close()
    with DB("/db", _small_options(env=env)) as reopened:
        assert reopened.get(b"persisted") == b"yes"


def test_recovery_after_process_crash():
    env = MemEnv()
    db = DB("/db", _small_options(env=env))
    for i in range(50):
        db.put(b"k-%03d" % i, b"v-%03d" % i)
    db.simulate_crash()
    with DB("/db", _small_options(env=env)) as recovered:
        for i in range(50):
            assert recovered.get(b"k-%03d" % i) == b"v-%03d" % i


def test_system_crash_loses_unsynced_keeps_synced():
    env = MemEnv()
    db = DB("/db", _small_options(env=env))
    db.put(b"synced", b"1", WriteOptions(sync=True))
    db.put(b"unsynced", b"2")  # buffered I/O only
    db.simulate_crash()
    env.crash_system()
    with DB("/db", _small_options(env=env)) as recovered:
        assert recovered.get(b"synced") == b"1"
        assert recovered.get(b"unsynced") is None


def test_recovery_preserves_flushed_data_and_sequence():
    env = MemEnv()
    db = DB("/db", _small_options(env=env))
    for i in range(300):
        db.put(b"key-%04d" % i, b"val")
    db.flush()
    last = db.snapshot()
    db.close()
    with DB("/db", _small_options(env=env)) as reopened:
        assert reopened.snapshot() >= last
        assert reopened.get(b"key-0299") == b"val"


def test_scan_range():
    with DB("/db", _small_options()) as db:
        for i in range(100):
            db.put(b"key-%04d" % i, b"%d" % i)
        db.flush()
        for i in range(100, 150):
            db.put(b"key-%04d" % i, b"%d" % i)  # still in memtable
        results = db.scan(b"key-0095", b"key-0105")
        assert [k for k, __ in results] == [b"key-%04d" % i for i in range(95, 105)]
        assert results[0][1] == b"95"


def test_scan_limit_and_tombstones():
    with DB("/db", _small_options()) as db:
        for i in range(20):
            db.put(b"k-%02d" % i, b"v")
        db.delete(b"k-03")
        results = db.scan(limit=5)
        assert len(results) == 5
        assert b"k-03" not in [k for k, __ in results]


def test_snapshot_read_in_memtable():
    with DB("/db", _small_options()) as db:
        db.put(b"k", b"v1")
        snap = db.snapshot()
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"
        assert db.get(b"k", ReadOptions(snapshot=snap)) == b"v1"


def test_disable_wal_write():
    env = MemEnv()
    db = DB("/db", _small_options(env=env))
    db.put(b"volatile", b"1", WriteOptions(disable_wal=True))
    assert db.get(b"volatile") == b"1"
    db.simulate_crash()
    with DB("/db", _small_options(env=env)) as recovered:
        assert recovered.get(b"volatile") is None


def test_closed_db_rejects_operations():
    db = DB("/db", _small_options())
    db.close()
    with pytest.raises(IOError_):
        db.put(b"k", b"v")
    with pytest.raises(IOError_):
        db.get(b"k")
    db.close()  # second close is a no-op


def test_open_missing_without_create_raises():
    options = _small_options(create_if_missing=False)
    with pytest.raises(InvalidArgumentError):
        DB("/nonexistent", options)


def test_universal_compaction_end_to_end():
    options = _small_options(
        compaction_style="universal", universal_max_sorted_runs=3
    )
    with DB("/db", options) as db:
        for i in range(2000):
            db.put(b"key-%05d" % (i % 400), b"v" * 40)
        db.compact_range()
        assert db.num_files_at_level(0) <= 3 + 1
        for i in range(400):
            assert db.get(b"key-%05d" % i) == b"v" * 40


def test_fifo_expires_old_data():
    options = _small_options(
        compaction_style="fifo",
        fifo_max_table_files_size=20 * 1024,
        write_buffer_size=4 * 1024,
    )
    with DB("/db", options) as db:
        for i in range(3000):
            db.put(b"key-%05d" % i, b"v" * 50)
        db.compact_range()
        total = sum(size for size in db.level_sizes())
        assert total <= 24 * 1024  # cap plus one in-flight file
        # The newest keys are present, the oldest were expired.
        assert db.get(b"key-%05d" % 2999) == b"v" * 50
        assert db.get(b"key-00000") is None
        assert db.stats.counter("db.fifo_expirations").value > 0


def test_fifo_ttl_expires_old_files():
    from repro.util.clock import VirtualClock

    clock = VirtualClock(start=1000.0)
    options = _small_options(
        compaction_style="fifo",
        fifo_max_table_files_size=100 * 1024 * 1024,  # size never triggers
        fifo_ttl_seconds=60.0,
        clock=clock,
    )
    with DB("/db", options) as db:
        for i in range(200):
            db.put(b"old-%03d" % i, b"v" * 50)
        db.flush()
        clock.advance(120.0)  # old files age past the TTL
        for i in range(200):
            db.put(b"new-%03d" % i, b"v" * 50)
        db.compact_range()
        assert db.get(b"new-000") == b"v" * 50     # fresh data retained
        assert db.get(b"old-000") is None          # expired with its file
        assert db.stats.counter("db.fifo_expirations").value > 0


def test_stats_counters_move():
    with DB("/db", _small_options()) as db:
        for i in range(300):
            db.put(b"key-%04d" % i, b"x" * 30)
        db.get(b"key-0001")
        db.flush()
        assert db.stats.counter("db.writes").value == 300
        assert db.stats.counter("db.gets").value == 1
        assert db.stats.counter("db.flushes").value >= 1


def test_multithreaded_writers():
    import threading

    options = _small_options()
    errors = []
    with DB("/db", options) as db:
        def writer(tid):
            try:
                for i in range(100):
                    db.put(b"t%d-k%03d" % (tid, i), b"v%d" % tid)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for tid in range(4):
            for i in range(0, 100, 13):
                assert db.get(b"t%d-k%03d" % (tid, i)) == b"v%d" % tid


def test_read_while_writing():
    import threading

    with DB("/db", _small_options()) as db:
        db.put(b"stable", b"value")
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    assert db.get(b"stable") == b"value"
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        for i in range(2000):
            db.put(b"key-%05d" % i, b"x" * 40)
        stop.set()
        thread.join()
        assert not errors


def test_write_slowdown_regime():
    """Above the slowdown trigger, writes are throttled (counted) but not
    blocked; data stays correct throughout."""
    options = _small_options(
        level0_file_num_compaction_trigger=100,  # pile L0 files up
        level0_slowdown_writes_trigger=2,
        level0_stop_writes_trigger=100,
        slowdown_delay_s=0.0001,
        write_buffer_size=2 * 1024,
    )
    with DB("/db", options) as db:
        for i in range(600):
            db.put(b"key-%04d" % i, b"x" * 50)
        assert db.stats.counter("db.slowdown_writes").value > 0
        for i in range(0, 600, 53):
            assert db.get(b"key-%04d" % i) == b"x" * 50


def test_wal_files_cleaned_after_flush():
    env = MemEnv()
    with DB("/db", _small_options(env=env)) as db:
        for i in range(500):
            db.put(b"key-%04d" % i, b"x" * 40)
        db.flush()
        wal_files = [n for n in env.list_dir("/db") if n.endswith(".log")]
        assert len(wal_files) == 1  # only the active WAL remains
