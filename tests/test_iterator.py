"""Tests for merging iterators and visibility collapsing."""

from hypothesis import given, strategies as st

from repro.lsm.dbformat import TYPE_DELETE, TYPE_PUT
from repro.lsm.iterator import merge_entries, newest_visible


def test_merge_two_sources():
    a = [(b"a", 1, TYPE_PUT, b"1"), (b"c", 3, TYPE_PUT, b"3")]
    b = [(b"b", 2, TYPE_PUT, b"2")]
    merged = list(merge_entries([a, b]))
    assert [e[0] for e in merged] == [b"a", b"b", b"c"]


def test_merge_orders_same_key_newest_first():
    a = [(b"k", 1, TYPE_PUT, b"old")]
    b = [(b"k", 5, TYPE_PUT, b"new")]
    merged = list(merge_entries([a, b]))
    assert merged[0][3] == b"new"
    assert merged[1][3] == b"old"


def test_newest_visible_dedupes():
    entries = [
        (b"k", 5, TYPE_PUT, b"new"),
        (b"k", 1, TYPE_PUT, b"old"),
        (b"l", 2, TYPE_PUT, b"x"),
    ]
    visible = list(newest_visible(entries))
    assert visible == [(b"k", 5, TYPE_PUT, b"new"), (b"l", 2, TYPE_PUT, b"x")]


def test_newest_visible_hides_tombstoned_keys():
    entries = [
        (b"k", 5, TYPE_DELETE, b""),
        (b"k", 1, TYPE_PUT, b"old"),
    ]
    assert list(newest_visible(entries)) == []


def test_newest_visible_keeps_tombstones_when_asked():
    entries = [
        (b"k", 5, TYPE_DELETE, b""),
        (b"k", 1, TYPE_PUT, b"old"),
    ]
    kept = list(newest_visible(entries, keep_tombstones=True))
    assert kept == [(b"k", 5, TYPE_DELETE, b"")]


def test_snapshot_filtering():
    entries = [
        (b"k", 9, TYPE_PUT, b"future"),
        (b"k", 4, TYPE_PUT, b"past"),
    ]
    visible = list(newest_visible(entries, snapshot_seq=5))
    assert visible == [(b"k", 4, TYPE_PUT, b"past")]


def test_snapshot_resurrects_overwritten_value():
    entries = [
        (b"k", 9, TYPE_DELETE, b""),
        (b"k", 4, TYPE_PUT, b"alive-at-5"),
    ]
    assert list(newest_visible(entries, snapshot_seq=5))[0][3] == b"alive-at-5"


@given(
    st.lists(
        st.tuples(
            st.binary(min_size=1, max_size=4),
            st.binary(max_size=4),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_merged_stream_matches_dict_semantics(ops):
    # Assign unique ascending sequences; split ops across 3 sources.
    sources = [[], [], []]
    reference = {}
    for seq, (key, value) in enumerate(ops, start=1):
        sources[seq % 3].append((key, seq, TYPE_PUT, value))
        reference[key] = value
    from repro.lsm.dbformat import MAX_SEQUENCE

    sorted_sources = [
        sorted(src, key=lambda e: (e[0], MAX_SEQUENCE - e[1])) for src in sources
    ]
    visible = list(newest_visible(merge_entries(sorted_sources)))
    assert {k: v for k, __, ___, v in visible} == reference
    keys = [entry[0] for entry in visible]
    assert keys == sorted(keys)
