"""Tests for the SHIELD design: per-file DEKs, rotation, WAL buffer,
secure-cache wiring, and the ablation flags."""

import pytest

from repro.env.mem import MemEnv
from repro.keys.cache import SecureDEKCache
from repro.keys.kds import InMemoryKDS, SimulatedKDS
from repro.lsm.db import DB
from repro.lsm.envelope import MAX_ENVELOPE_SIZE, decode_envelope
from repro.lsm.options import Options
from repro.shield import (
    ShieldOptions,
    dek_inventory,
    open_shield_db,
    rotation_report,
)
from repro.util.clock import VirtualClock


def _base_options(env=None, **overrides):
    defaults = dict(
        env=env or MemEnv(),
        write_buffer_size=4 * 1024,
        block_size=1024,
        max_bytes_for_level_base=16 * 1024,
        target_file_size=8 * 1024,
        level0_file_num_compaction_trigger=2,
    )
    defaults.update(overrides)
    return Options(**defaults)


def _shield(kds=None, **overrides) -> ShieldOptions:
    return ShieldOptions(kds=kds or InMemoryKDS(), **overrides)


def test_basic_crud_under_shield():
    db = open_shield_db("/db", _shield(), _base_options())
    with db:
        db.put(b"k", b"v")
        assert db.get(b"k") == b"v"
        db.delete(b"k")
        assert db.get(b"k") is None


def test_no_plaintext_on_storage():
    env = MemEnv()
    db = open_shield_db("/db", _shield(), _base_options(env=env))
    with db:
        for i in range(400):
            db.put(b"customer-%04d" % i, b"SSN-SECRET-%04d" % i)
        db.flush()
        for name in env.list_dir("/db"):
            if name == "CURRENT":
                continue  # only names a manifest; holds no user data
            raw = env.read_file(f"/db/{name}")
            assert b"SSN-SECRET" not in raw
            assert b"customer-0001" not in raw


def test_unique_dek_per_file():
    kds = InMemoryKDS()
    db = open_shield_db("/db", _shield(kds), _base_options())
    with db:
        for i in range(3000):
            db.put(b"key-%05d" % i, b"v" * 50)
        db.flush()
        inventory = dek_inventory(db)
        assert len(inventory) >= 2
        dek_ids = [record.dek_id for record in inventory]
        assert len(set(dek_ids)) == len(dek_ids)  # all distinct
        assert all(dek_id.startswith("dek-") for dek_id in dek_ids)


def test_dek_id_embedded_in_file_envelope():
    env = MemEnv()
    db = open_shield_db("/db", _shield(), _base_options(env=env))
    with db:
        for i in range(500):
            db.put(b"key-%04d" % i, b"v" * 50)
        db.flush()
        inventory = dek_inventory(db)
        for record in inventory:
            raw = env.read_file(f"/db/{record.file_number:06d}.sst")
            envelope = decode_envelope(raw[:MAX_ENVELOPE_SIZE])
            assert envelope.dek_id == record.dek_id
            assert envelope.encrypted


def test_dek_rotation_via_compaction():
    kds = InMemoryKDS()
    db = open_shield_db("/db", _shield(kds), _base_options())
    with db:
        for i in range(2000):
            db.put(b"key-%05d" % (i % 500), b"v" * 50)
        db.flush()
        db.wait_for_compaction()
        before = dek_inventory(db)
        # A major compaction rewrites every file: full DEK rotation.
        db.force_compaction()
        after = dek_inventory(db)
        report = rotation_report(before, after)
        # Compaction merged every L0 file: all old DEKs rotated out.
        assert report.fully_rotated
        assert report.fresh
        # Retired DEKs are gone from the KDS: a stolen old DEK is useless.
        for dek_id in report.rotated_out:
            assert not kds.knows(dek_id)


def test_kds_dek_count_tracks_live_files():
    kds = InMemoryKDS()
    db = open_shield_db("/db", _shield(kds), _base_options())
    with db:
        for i in range(2000):
            db.put(b"key-%05d" % i, b"v" * 40)
        db.compact_range()
        live_files = len(db.live_files())
        # live DEKs = live SSTs + active WAL + manifest
        assert kds.live_dek_count() == live_files + 2


def test_recovery_resolves_deks_from_kds():
    env = MemEnv()
    kds = InMemoryKDS()
    db = open_shield_db("/db", _shield(kds), _base_options(env=env))
    for i in range(300):
        db.put(b"key-%04d" % i, b"value-%04d" % i)
    db.flush()
    db.close()
    reopened = open_shield_db("/db", _shield(kds), _base_options(env=env))
    with reopened:
        for i in range(0, 300, 23):
            assert reopened.get(b"key-%04d" % i) == b"value-%04d" % i


def test_recovery_replays_encrypted_wal():
    env = MemEnv()
    kds = InMemoryKDS()
    db = open_shield_db("/db", _shield(kds, wal_buffer_size=0), _base_options(env=env))
    db.put(b"unflushed", b"wal-only")
    db.simulate_crash()
    recovered = open_shield_db("/db", _shield(kds), _base_options(env=env))
    with recovered:
        assert recovered.get(b"unflushed") == b"wal-only"


def test_wal_buffer_loses_tail_on_crash_but_never_leaks():
    env = MemEnv()
    kds = InMemoryKDS()
    shield = _shield(kds, wal_buffer_size=4096)  # large buffer: writes stay in it
    db = open_shield_db("/db", shield, _base_options(env=env))
    db.put(b"buffered-key", b"buffered-value")
    db.simulate_crash()
    # The paper's trade-off: the buffered tail is lost on an app crash...
    recovered = open_shield_db("/db", _shield(kds), _base_options(env=env))
    with recovered:
        assert recovered.get(b"buffered-key") is None
    # ...but nothing plaintext ever reached storage.
    for name in env.list_dir("/db"):
        assert b"buffered-value" not in env.read_file(f"/db/{name}")


def test_wal_buffer_flush_on_explicit_sync():
    env = MemEnv()
    kds = InMemoryKDS()
    db = open_shield_db("/db", _shield(kds, wal_buffer_size=4096), _base_options(env=env))
    from repro.lsm.options import WriteOptions

    db.put(b"synced-key", b"synced-value", WriteOptions(sync=True))
    db.simulate_crash()
    recovered = open_shield_db("/db", _shield(kds), _base_options(env=env))
    with recovered:
        assert recovered.get(b"synced-key") == b"synced-value"


def test_secure_cache_absorbs_kds_fetches(tmp_path):
    clock = VirtualClock()
    kds = SimulatedKDS(clock=clock, request_latency_s=0.01)
    kds.authorize_server("server-1")
    cache = SecureDEKCache(str(tmp_path / "dekcache"), "passkey", iterations=10)
    env = MemEnv()
    shield = _shield(kds, dek_cache=cache)
    db = open_shield_db("/db", shield, _base_options(env=env))
    for i in range(300):
        db.put(b"key-%04d" % i, b"v" * 40)
    db.flush()
    db.close()
    slept_before = clock.total_slept
    # Restart: every DEK resolves from the local secure cache, zero KDS trips.
    reopened = open_shield_db(
        "/db", _shield(kds, dek_cache=cache), _base_options(env=env)
    )
    with reopened:
        assert reopened.get(b"key-0000") == b"v" * 40
        provider = reopened.options.crypto_provider
        client = provider.key_client
        assert client.stats.counter("keyclient.kds_fetches").value == 0
        assert client.stats.counter("keyclient.cache_hits").value > 0


def test_table2_ablation_flags():
    env = MemEnv()
    kds = InMemoryKDS()
    shield = _shield(kds, encrypt_wal=False, encrypt_manifest=False,
                     wal_buffer_size=0)
    db = open_shield_db("/db", shield, _base_options(env=env))
    with db:
        db.put(b"needle-key", b"needle-value")
        wal_files = [n for n in env.list_dir("/db") if n.endswith(".log")]
        raw = env.read_file(f"/db/{wal_files[0]}")
        assert b"needle-value" in raw  # WAL left plaintext on purpose
        db.flush()
        sst_files = [n for n in env.list_dir("/db") if n.endswith(".sst")]
        raw = env.read_file(f"/db/{sst_files[0]}")
        assert b"needle-value" not in raw  # SSTs still encrypted


def test_unauthorized_server_cannot_open(tmp_path):
    env = MemEnv()
    kds = SimulatedKDS(clock=VirtualClock())
    kds.authorize_server("owner")
    db = open_shield_db(
        "/db", _shield(kds, server_id="owner"), _base_options(env=env)
    )
    db.put(b"k", b"v")
    db.flush()
    db.close()
    from repro.errors import AuthorizationError

    with pytest.raises(AuthorizationError):
        open_shield_db(
            "/db", _shield(kds, server_id="attacker"), _base_options(env=env)
        )


def test_revoked_server_blocked_mid_flight(tmp_path):
    env = MemEnv()
    kds = SimulatedKDS(clock=VirtualClock())
    kds.authorize_server("s1")
    db = open_shield_db("/db", _shield(kds, server_id="s1"), _base_options(env=env))
    db.put(b"k", b"v" * 5000)  # enough to need another file soon
    kds.revoke_server("s1")
    from repro.errors import IOError_

    with pytest.raises(Exception):
        for i in range(5000):
            db.put(b"key-%05d" % i, b"v" * 50)
        db.flush()


def test_provider_counters():
    kds = InMemoryKDS()
    db = open_shield_db("/db", _shield(kds), _base_options())
    with db:
        for i in range(2000):
            db.put(b"key-%05d" % i, b"v" * 40)
        db.compact_range()
        provider = db.options.crypto_provider
        assert provider.deks_provisioned > 0
        assert provider.deks_retired > 0
        assert provider.deks_provisioned > provider.deks_retired
