"""The perf-trajectory differ (repro.tools.bench_compare)."""

from __future__ import annotations

import json

from repro.tools.bench_compare import compare, load_results_dir, main, pr_number


def _payload(experiment, **rows):
    return {
        "experiment": experiment,
        "results": [
            {"name": name, "throughput": tput} for name, tput in rows.items()
        ],
    }


def test_pr_number_ordering():
    assert pr_number("BENCH_PR7") == 7
    assert pr_number("BENCH_PR10") == 10
    assert pr_number("custom-run") > 1_000_000  # unrecognized sorts last


def test_compare_aligns_rows_and_computes_deltas():
    table, changes = compare(
        [
            _payload("BENCH_PR9", **{"ycsb-A": 1000.0, "old-only": 5.0}),
            _payload("BENCH_PR10", **{"ycsb-A": 1200.0, "new-only": 7.0}),
        ]
    )
    assert "ycsb-A" in table
    assert "+20.0%" in table
    assert len(changes) == 1
    assert changes[0]["name"] == "ycsb-A"
    assert changes[0]["prev_experiment"] == "BENCH_PR9"
    assert abs(changes[0]["delta_pct"] - 20.0) < 1e-9
    # Rows unique to one experiment render but produce no delta.
    assert "old-only" in table and "new-only" in table


def test_compare_skips_gaps_to_previous_measurement():
    # PR9 never measured the row: PR10's delta is vs. PR8, not vs. nothing.
    __, changes = compare(
        [
            _payload("BENCH_PR8", row=100.0),
            _payload("BENCH_PR9", other=1.0),
            _payload("BENCH_PR10", row=90.0),
        ]
    )
    (change,) = [c for c in changes if c["name"] == "row"]
    assert change["prev_experiment"] == "BENCH_PR8"
    assert abs(change["delta_pct"] + 10.0) < 1e-9


def test_compare_empty():
    table, changes = compare([])
    assert changes == []
    assert "no BENCH_PR" in table


def test_load_results_dir_sorts_by_pr_number(tmp_path):
    for name, tput in (("BENCH_PR10", 2.0), ("BENCH_PR9", 1.0)):
        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps(_payload(name, row=tput)))
    payloads = load_results_dir(str(tmp_path))
    assert [p["experiment"] for p in payloads] == ["BENCH_PR9", "BENCH_PR10"]


def test_main_fail_threshold(tmp_path, capsys):
    (tmp_path / "BENCH_PR9.json").write_text(json.dumps(_payload("BENCH_PR9", row=100.0)))
    (tmp_path / "BENCH_PR10.json").write_text(json.dumps(_payload("BENCH_PR10", row=50.0)))
    assert main(["--results-dir", str(tmp_path)]) == 0
    assert main(["--results-dir", str(tmp_path), "--fail-threshold", "60"]) == 0
    assert main(["--results-dir", str(tmp_path), "--fail-threshold", "20"]) == 1
    captured = capsys.readouterr()
    assert "REGRESSION row" in captured.err


def test_main_unknown_experiment(tmp_path):
    (tmp_path / "BENCH_PR9.json").write_text(json.dumps(_payload("BENCH_PR9", row=1.0)))
    assert main(["--results-dir", str(tmp_path), "--experiments", "NOPE"]) == 2


def test_main_json_output(tmp_path, capsys):
    (tmp_path / "BENCH_PR9.json").write_text(json.dumps(_payload("BENCH_PR9", row=100.0)))
    (tmp_path / "BENCH_PR10.json").write_text(json.dumps(_payload("BENCH_PR10", row=110.0)))
    assert main(["--results-dir", str(tmp_path), "--json"]) == 0
    changes = json.loads(capsys.readouterr().out)
    assert abs(changes[0]["delta_pct"] - 10.0) < 1e-6
