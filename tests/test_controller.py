"""Adaptive compaction controller (repro.obs.controller) and its DB loop."""

from __future__ import annotations

import pytest

from repro.env.mem import MemEnv
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.obs.controller import AdaptiveController, ControllerConfig
from repro.obs.trace import TRACER, RingBufferSink


def _signals(**overrides) -> dict:
    base = {
        "stall_seconds": 0.0,
        "slowdown_writes": 0,
        "level_debt_bytes": [0] * 7,
        "write_bytes_per_s": 0.0,
        "get_ops_per_s": 0.0,
        "scan_ops_per_s": 0.0,
        "read_amp": 0.0,
        "encrypt_s_per_compaction_byte": 0.0,
    }
    base.update(overrides)
    return base


def _fast_config(**overrides) -> ControllerConfig:
    config = ControllerConfig(
        tick_interval_s=0.0, confirm_ticks=1, dwell_s=0.0, max_flips_per_min=1000
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def test_refuses_fifo():
    with pytest.raises(ValueError):
        AdaptiveController("fifo")


def test_write_pressure_selects_universal():
    ctrl = AdaptiveController("leveled", config=_fast_config())
    decision = ctrl.decide(_signals(stall_seconds=1.0), "healthy", 0.0)
    assert decision.policy == "universal"
    assert decision.policy_changed
    assert decision.reason == "write-pressure"


def test_scan_heavy_selects_leveled():
    ctrl = AdaptiveController("universal", config=_fast_config())
    decision = ctrl.decide(
        _signals(get_ops_per_s=400.0, scan_ops_per_s=100.0), "healthy", 0.0
    )
    assert decision.policy == "leveled"
    assert decision.reason == "read-heavy"


def test_high_read_amp_point_reads_select_leveled():
    ctrl = AdaptiveController("universal", config=_fast_config())
    decision = ctrl.decide(
        _signals(get_ops_per_s=500.0, read_amp=9.0), "healthy", 0.0
    )
    assert decision.policy == "leveled"
    assert decision.reason == "read-heavy"


def test_skewed_point_reads_keep_current_policy():
    # Point lookups early-exit at the newest run holding the key; without
    # scan traffic or high probe counts there is nothing for a leveled
    # restructure to pay back.
    ctrl = AdaptiveController("universal", config=_fast_config())
    decision = ctrl.decide(
        _signals(get_ops_per_s=500.0, read_amp=1.2), "healthy", 0.0
    )
    assert decision.policy == "universal"
    assert not decision.policy_changed
    assert decision.reason == "read-heavy:point"


def test_mixed_with_scans_selects_lazy_leveled():
    ctrl = AdaptiveController("leveled", config=_fast_config())
    decision = ctrl.decide(
        _signals(stall_seconds=1.0, get_ops_per_s=400.0, scan_ops_per_s=100.0),
        "healthy",
        0.0,
    )
    assert decision.policy == "lazy-leveled"
    assert decision.reason == "mixed"


def test_mixed_point_reads_select_universal():
    ctrl = AdaptiveController("leveled", config=_fast_config())
    decision = ctrl.decide(
        _signals(stall_seconds=1.0, get_ops_per_s=500.0), "healthy", 0.0
    )
    assert decision.policy == "universal"
    assert decision.reason == "mixed:point-reads"


def test_idle_keeps_current_policy():
    ctrl = AdaptiveController("lazy-leveled", config=_fast_config())
    decision = ctrl.decide(_signals(), "healthy", 0.0)
    assert decision.policy == "lazy-leveled"
    assert not decision.policy_changed
    assert decision.reason == "idle"


def test_confirmation_ticks_gate_the_flip():
    ctrl = AdaptiveController("leveled", config=_fast_config(confirm_ticks=3))
    pressure = _signals(stall_seconds=1.0)
    assert not ctrl.decide(pressure, "healthy", 0.0).policy_changed
    assert not ctrl.decide(pressure, "healthy", 1.0).policy_changed
    assert ctrl.decide(pressure, "healthy", 2.0).policy_changed
    # A contradicting tick in between restarts the count.
    ctrl = AdaptiveController("leveled", config=_fast_config(confirm_ticks=2))
    assert not ctrl.decide(pressure, "healthy", 0.0).policy_changed
    assert not ctrl.decide(_signals(), "healthy", 1.0).policy_changed
    assert not ctrl.decide(pressure, "healthy", 2.0).policy_changed
    assert ctrl.decide(pressure, "healthy", 3.0).policy_changed


def test_dwell_time_blocks_rapid_flips():
    ctrl = AdaptiveController("leveled", config=_fast_config(dwell_s=10.0))
    assert ctrl.decide(_signals(stall_seconds=1.0), "healthy", 0.0).policy_changed
    # Scan pressure immediately after: must wait out the dwell.
    reads = _signals(get_ops_per_s=400.0, scan_ops_per_s=100.0)
    assert not ctrl.decide(reads, "healthy", 1.0).policy_changed
    assert not ctrl.decide(reads, "healthy", 9.0).policy_changed
    assert ctrl.decide(reads, "healthy", 10.5).policy_changed
    assert ctrl.policy == "leveled"


def test_flip_frequency_cap():
    """Regression pin: even with zero dwell the per-minute cap holds."""
    ctrl = AdaptiveController(
        "leveled", config=_fast_config(max_flips_per_min=2)
    )
    write = _signals(stall_seconds=1.0)
    read = _signals(get_ops_per_s=500.0)
    flips = 0
    now = 0.0
    for i in range(50):
        decision = ctrl.decide(write if i % 2 == 0 else read, "healthy", now)
        flips += decision.policy_changed
        now += 0.5  # 50 alternating ticks inside 25 s
    assert flips <= 2
    assert ctrl.policy_changes == flips


def test_freeze_while_unhealthy():
    ctrl = AdaptiveController("leveled", config=_fast_config(confirm_ticks=2))
    pressure = _signals(stall_seconds=1.0)
    ctrl.decide(pressure, "healthy", 0.0)  # evidence accumulating
    decision = ctrl.decide(pressure, "degraded", 1.0)
    assert decision.frozen
    assert not decision.policy_changed
    assert decision.policy == "leveled"
    assert ctrl.frozen_ticks == 1
    # The freeze reset pending evidence: healing restarts confirmation.
    assert not ctrl.decide(pressure, "healthy", 2.0).policy_changed
    assert ctrl.decide(pressure, "healthy", 3.0).policy_changed


def test_offload_only_when_link_cheaper():
    config = _fast_config(offload_margin=1.5)
    ctrl = AdaptiveController(
        "leveled",
        offload_available=True,
        link_s_per_byte=1e-6,
        config=config,
    )
    assert ctrl.offload  # starts on: matches the static engine
    # Local crypto much cheaper than the link -> pull the work back.
    decision = ctrl.decide(
        _signals(encrypt_s_per_compaction_byte=1e-8), "healthy", 0.0
    )
    assert decision.offload_changed and not ctrl.offload
    # Inside the hysteresis band: no change either way.
    decision = ctrl.decide(
        _signals(encrypt_s_per_compaction_byte=1.2e-6), "healthy", 1.0
    )
    assert not decision.offload_changed and not ctrl.offload
    # Local clearly more expensive -> ship it.
    decision = ctrl.decide(
        _signals(encrypt_s_per_compaction_byte=1e-5), "healthy", 2.0
    )
    assert decision.offload_changed and ctrl.offload


def test_offload_never_without_service():
    ctrl = AdaptiveController("leveled", config=_fast_config())
    decision = ctrl.decide(
        _signals(encrypt_s_per_compaction_byte=1.0), "healthy", 0.0
    )
    assert not decision.offload and not decision.offload_changed


# ----------------------------------------------------------------------
# The DB-hosted control loop.
# ----------------------------------------------------------------------


def _adaptive_options(**overrides) -> Options:
    return Options(
        env=MemEnv(),
        adaptive_compaction=True,
        adaptive_config=_fast_config(),
        write_buffer_size=4 * 1024,
        level0_file_num_compaction_trigger=2,
        max_bytes_for_level_base=16 * 1024,
        **overrides,
    )


def test_db_control_loop_reacts_to_write_pressure():
    with DB("/ctl", _adaptive_options()) as db:
        assert db.controller_state() is not None
        for i in range(6000):
            db.put(b"key-%06d" % i, b"v" * 64)
        db.compact_range()
        state = db.controller_state()
        # The fill produced L0 debt ticks: the controller moved off
        # the static leveled default at least once.
        assert db.stats.counter("controller.ticks").value >= 1
        assert state["policy"] in ("universal", "lazy-leveled", "leveled")
        assert db.stats.counter("controller.policy_changes").value >= 1
        for i in range(0, 6000, 131):
            assert db.get(b"key-%06d" % i) == b"v" * 64


def test_policy_change_span_parents_under_bg_job():
    sink = RingBufferSink(capacity=200_000)
    TRACER.configure(enabled=True, sinks=[sink], sample_rate=1.0)
    try:
        with DB("/ctl-trace", _adaptive_options()) as db:
            for i in range(6000):
                db.put(b"key-%06d" % i, b"v" * 64)
            db.compact_range()
    finally:
        TRACER.disable()
    spans = {span.span_id: span for span in sink.spans()}
    changes = [s for s in sink.spans() if s.name == "compaction.policy_change"]
    assert changes, "no policy-change span emitted"
    for change in changes:
        assert change.parent_id is not None
        parent = spans.get(change.parent_id)
        # The parent finished after its child: it must be a bg-job span
        # (or a read span for read-path ticks).
        if parent is not None:
            assert parent.name in ("db.flush_job", "db.compaction")


def test_adaptive_off_means_no_controller():
    options = Options(env=MemEnv(), adaptive_compaction=False)
    with DB("/static", options) as db:
        assert db._controller is None
        assert db.controller_state() is None
        db.put(b"k", b"v")
        assert db.stats.counter("controller.ticks").value == 0


def test_fifo_never_gets_a_controller():
    options = Options(
        env=MemEnv(), compaction_style="fifo", adaptive_compaction=True
    )
    with DB("/fifo", options) as db:
        assert db.controller_state() is None


def test_env_knob_enables_controller(monkeypatch):
    monkeypatch.setenv("REPRO_ADAPTIVE", "1")
    with DB("/env-knob", Options(env=MemEnv())) as db:
        assert db.controller_state() is not None
    monkeypatch.setenv("REPRO_ADAPTIVE", "0")
    with DB("/env-knob2", Options(env=MemEnv())) as db:
        assert db.controller_state() is None
