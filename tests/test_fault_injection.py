"""Failure-handling tests driven by the fault-injection Env."""

import time

import pytest

from repro.env.faulty import FaultInjectionEnv
from repro.env.mem import MemEnv
from repro.errors import IOError_
from repro.lsm.db import DB
from repro.lsm.options import Options


def _options(env, **overrides):
    defaults = dict(env=env, write_buffer_size=4 * 1024, block_size=1024)
    defaults.update(overrides)
    return Options(**defaults)


def _wait_for_bg_error(db, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        with db._mutex:
            if db._bg_error is not None:
                return True
        time.sleep(0.01)
    return False


def test_direct_write_failure_surfaces():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    db = DB("/f", _options(env))
    db.put(b"ok", b"1")
    env.fail_paths(lambda path: path.endswith(".log"))
    with pytest.raises(IOError_):
        for i in range(100):
            db.put(b"key-%03d" % i, b"v")
    env.heal()
    db.simulate_crash()


def test_flush_failure_becomes_background_error():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    db = DB("/f", _options(env))
    for i in range(50):
        db.put(b"key-%03d" % i, b"v" * 40)
    env.fail_paths(lambda path: path.endswith(".sst"))
    # Trigger a flush; the SST build fails in the background.
    with pytest.raises(IOError_):
        db.flush()
    assert env.injected_failures > 0
    # Subsequent writes refuse with the background error.
    with pytest.raises(IOError_):
        db.put(b"more", b"data")
    env.heal()
    db.simulate_crash()

    # Recovery from the WAL restores everything that was acknowledged.
    recovered = DB("/f", _options(FaultInjectionEnv(inner)))
    try:
        for i in range(50):
            assert recovered.get(b"key-%03d" % i) == b"v" * 40
    finally:
        recovered.close()


def test_compaction_failure_keeps_data_readable():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    options = _options(env, level0_file_num_compaction_trigger=2)
    db = DB("/f", options)
    for i in range(400):
        db.put(b"key-%04d" % i, b"v" * 40)
    db.flush()
    # Fail only *new* SST creation (compaction outputs), not the WAL.
    sst_count_now = len([n for n in inner.list_dir("/f") if n.endswith(".sst")])
    env.fail_paths(lambda path: path.endswith(".sst"))
    for i in range(400, 800):
        try:
            db.put(b"key-%04d" % i, b"v" * 40)
        except IOError_:
            break
    _wait_for_bg_error(db)
    # Reads still work on the intact files (no torn state visible).
    assert db.get(b"key-0001") == b"v" * 40
    env.heal()
    db.simulate_crash()
    recovered = DB("/f", _options(FaultInjectionEnv(inner)))
    try:
        assert recovered.get(b"key-0001") == b"v" * 40
        recovered.compact_range()  # compaction succeeds after healing
        assert recovered.get(b"key-0001") == b"v" * 40
    finally:
        recovered.close()


def test_fail_after_countdown():
    env = FaultInjectionEnv(MemEnv())
    env.fail_after_writes(3)
    handle = env.new_writable_file("/a")  # 1
    handle.append(b"x")                   # 2
    handle.append(b"y")                   # 3
    with pytest.raises(IOError_):
        handle.append(b"z")               # 4 -> fails
    env.heal()
    handle.append(b"z")


def test_reads_unaffected_by_write_faults():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    env.write_file("/f", b"data")
    env.fail_paths(lambda path: True)
    assert env.read_file("/f") == b"data"
    assert env.file_exists("/f")
    with pytest.raises(IOError_):
        env.write_file("/g", b"nope")
