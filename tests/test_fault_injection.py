"""Failure-handling tests driven by the fault-injection Env."""

import time

import pytest

from repro.env.faulty import FaultInjectionEnv
from repro.env.mem import MemEnv
from repro.errors import IOError_
from repro.lsm.db import DB
from repro.lsm.options import Options


def _options(env, **overrides):
    defaults = dict(env=env, write_buffer_size=4 * 1024, block_size=1024)
    defaults.update(overrides)
    return Options(**defaults)


def _wait_for_bg_error(db, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        with db._mutex:
            if db._bg_error is not None:
                return True
        time.sleep(0.01)
    return False


def test_direct_write_failure_surfaces():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    db = DB("/f", _options(env))
    db.put(b"ok", b"1")
    env.fail_paths(lambda path: path.endswith(".log"))
    with pytest.raises(IOError_):
        for i in range(100):
            db.put(b"key-%03d" % i, b"v")
    env.heal()
    db.simulate_crash()


def test_flush_failure_becomes_background_error():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    db = DB("/f", _options(env))
    for i in range(50):
        db.put(b"key-%03d" % i, b"v" * 40)
    env.fail_paths(lambda path: path.endswith(".sst"))
    # Trigger a flush; the SST build fails in the background.
    with pytest.raises(IOError_):
        db.flush()
    assert env.injected_failures > 0
    # Subsequent writes refuse with the background error.
    with pytest.raises(IOError_):
        db.put(b"more", b"data")
    env.heal()
    db.simulate_crash()

    # Recovery from the WAL restores everything that was acknowledged.
    recovered = DB("/f", _options(FaultInjectionEnv(inner)))
    try:
        for i in range(50):
            assert recovered.get(b"key-%03d" % i) == b"v" * 40
    finally:
        recovered.close()


def test_compaction_failure_keeps_data_readable():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    options = _options(env, level0_file_num_compaction_trigger=2)
    db = DB("/f", options)
    for i in range(400):
        db.put(b"key-%04d" % i, b"v" * 40)
    db.flush()
    # Fail only *new* SST creation (compaction outputs), not the WAL.
    sst_count_now = len([n for n in inner.list_dir("/f") if n.endswith(".sst")])
    env.fail_paths(lambda path: path.endswith(".sst"))
    for i in range(400, 800):
        try:
            db.put(b"key-%04d" % i, b"v" * 40)
        except IOError_:
            break
    _wait_for_bg_error(db)
    # Reads still work on the intact files (no torn state visible).
    assert db.get(b"key-0001") == b"v" * 40
    env.heal()
    db.simulate_crash()
    recovered = DB("/f", _options(FaultInjectionEnv(inner)))
    try:
        assert recovered.get(b"key-0001") == b"v" * 40
        recovered.compact_range()  # compaction succeeds after healing
        assert recovered.get(b"key-0001") == b"v" * 40
    finally:
        recovered.close()


def test_fail_after_countdown():
    env = FaultInjectionEnv(MemEnv())
    env.fail_after_writes(3)
    handle = env.new_writable_file("/a")  # 1
    handle.append(b"x")                   # 2
    handle.append(b"y")                   # 3
    with pytest.raises(IOError_):
        handle.append(b"z")               # 4 -> fails
    env.heal()
    handle.append(b"z")


def test_reads_unaffected_by_write_faults():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    env.write_file("/f", b"data")
    env.fail_paths(lambda path: True)
    assert env.read_file("/f") == b"data"
    assert env.file_exists("/f")
    with pytest.raises(IOError_):
        env.write_file("/g", b"nope")


# -- read-side faults --------------------------------------------------------


def _read_all(env, path):
    handle = env.new_random_access_file(path)
    try:
        return handle.read(0, env.file_size(path))
    finally:
        handle.close()


def test_transient_read_fault_self_disarms():
    env = FaultInjectionEnv(MemEnv())
    env.write_file("/f", b"payload")
    env.fail_reads(times=2, after=1)
    assert _read_all(env, "/f") == b"payload"   # 1 clean read first
    with pytest.raises(IOError_):
        _read_all(env, "/f")
    with pytest.raises(IOError_):
        _read_all(env, "/f")
    assert _read_all(env, "/f") == b"payload"   # disarmed by itself
    assert env.injected_read_failures == 2


def test_read_error_rate_is_seeded():
    def run(seed):
        env = FaultInjectionEnv(MemEnv(), seed=seed)
        env.write_file("/f", b"payload")
        env.set_read_error_rate(0.5)
        outcomes = []
        for _ in range(32):
            try:
                _read_all(env, "/f")
                outcomes.append(1)
            except IOError_:
                outcomes.append(0)
        return outcomes

    assert run(3) == run(3)
    assert 0 < sum(run(3)) < 32


def test_bit_flip_corrupts_exactly_one_bit():
    env = FaultInjectionEnv(MemEnv(), seed=1)
    env.write_file("/f", b"\x00" * 64)
    env.flip_read_bits(times=1)
    flipped = _read_all(env, "/f")
    assert flipped != b"\x00" * 64
    assert sum(bin(b).count("1") for b in flipped) == 1
    assert env.injected_bit_flips == 1
    assert _read_all(env, "/f") == b"\x00" * 64  # self-disarmed


def test_engine_retries_transient_read_faults():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    db = DB("/f", _options(env))
    for i in range(50):
        db.put(b"key-%03d" % i, b"v" * 40)
    db.flush()
    env.fail_reads(times=2, predicate=lambda p: p.endswith(".sst"))
    # Two injected read errors are absorbed by the read path's retry.
    assert db.get(b"key-001") == b"v" * 40
    assert env.injected_read_failures > 0
    db.close()


def test_engine_retries_transient_bit_flips():
    inner = MemEnv()
    env = FaultInjectionEnv(inner, seed=5)
    db = DB("/f", _options(env))
    for i in range(50):
        db.put(b"key-%03d" % i, b"v" * 40)
    db.flush()
    env.flip_read_bits(times=1, predicate=lambda p: p.endswith(".sst"))
    # The flipped ciphertext fails the checksum; the retry re-reads clean.
    for i in range(50):
        assert db.get(b"key-%03d" % i) == b"v" * 40
    assert env.injected_bit_flips == 1
    db.close()


# -- sync-only and torn syncs ------------------------------------------------


def test_sync_only_fault_lets_appends_through():
    env = FaultInjectionEnv(MemEnv())
    env.fail_syncs(after=1)
    handle = env.new_writable_file("/f")
    handle.append(b"data")
    handle.sync()                      # first sync passes
    handle.append(b"more")
    with pytest.raises(IOError_):
        handle.sync()                  # durability fails, data was buffered
    env.heal()
    handle.sync()
    handle.close()
    assert env.read_file("/f") == b"datamore"


def test_torn_sync_loses_the_tail_at_crash():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    handle = env.new_writable_file("/f")
    handle.append(b"head-")
    handle.sync()                      # honest sync: durable
    env.arm_torn_sync(drop_bytes=4)
    handle.append(b"tail")
    handle.sync()                      # lies: claims success
    assert env.torn_syncs == 1
    env.crash_system()
    assert env.read_file("/f") == b"head-"  # the lie comes true


def test_honest_resync_supersedes_a_recorded_tear():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    handle = env.new_writable_file("/f")
    handle.append(b"data")
    env.arm_torn_sync(drop_bytes=2)
    handle.sync()                      # torn
    env.heal()                         # disarms arming, keeps the record
    handle.sync()                      # honest sync clears the tear
    env.crash_system()
    assert env.read_file("/f") == b"data"


def test_heal_preserves_recorded_tears():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    handle = env.new_writable_file("/f")
    handle.append(b"abcdef")
    env.arm_torn_sync(drop_bytes=3)
    handle.sync()
    env.heal()                         # the sync already lied
    env.crash_system()
    assert env.read_file("/f") == b"abc"


def test_close_and_delete_honor_armed_faults():
    env = FaultInjectionEnv(MemEnv())
    handle = env.new_writable_file("/f")
    handle.append(b"x")
    env.write_file("/g", b"y")
    env.fail_paths(lambda path: True)
    with pytest.raises(IOError_):
        handle.close()
    with pytest.raises(IOError_):
        env.delete_file("/g")
    env.heal()
    handle.close()
    env.delete_file("/g")
