"""Tests for the two strawman designs the paper rejects: the dual-WAL and
the KDS-side file->DEK mapping.  They must *work* (so the ablation
benchmarks are fair) while exhibiting exactly the flaws the paper cites."""

import time

import pytest

from repro.crypto.cipher import generate_key, generate_nonce, scheme_id
from repro.env.mem import MemEnv
from repro.errors import KeyManagementError, NotFoundError
from repro.lsm.db import DB
from repro.lsm.envelope import FILE_KIND_SST
from repro.lsm.filecrypto import FileCrypto, PlaintextCryptoProvider
from repro.lsm.options import Options
from repro.lsm.wal import read_wal_records
from repro.shield.dualwal import DualWALWriter
from repro.shield.naive_mapping import MappingCryptoProvider, MappingKDS
from repro.util.clock import VirtualClock


def _crypto():
    return FileCrypto(
        scheme_id("shake-ctr"), "dek-dw", generate_key("shake-ctr"),
        generate_nonce("shake-ctr"),
    )


class _Resolver(PlaintextCryptoProvider):
    def __init__(self, crypto):
        self._crypto = crypto

    def for_existing_file(self, envelope, path):
        if envelope.encrypted:
            return self._crypto
        return super().for_existing_file(envelope, path)


def _drain(writer, timeout=5.0):
    deadline = time.time() + timeout
    while writer.encrypted_backlog and time.time() < deadline:
        time.sleep(0.005)


def test_dual_wal_writes_both_logs():
    env = MemEnv()
    crypto = _crypto()
    writer = DualWALWriter(env, "/dw.log", crypto)
    records = [b"record-%d" % i for i in range(20)]
    for record in records:
        writer.add_record(record)
    _drain(writer)
    writer.close()
    plain = read_wal_records(env, "/dw.log.plain", PlaintextCryptoProvider())
    encrypted = read_wal_records(env, "/dw.log", _Resolver(crypto))
    assert plain == records
    assert encrypted == records


def test_dual_wal_security_hole_plaintext_on_disk():
    """The flaw the paper calls out: the primary log is plaintext."""
    env = MemEnv()
    writer = DualWALWriter(env, "/dw.log", _crypto())
    writer.add_record(b"CONFIDENTIAL-RECORD")
    writer.sync()
    raw = env.read_file("/dw.log.plain")
    assert b"CONFIDENTIAL-RECORD" in raw
    writer.close()


def test_dual_wal_crash_recovers_from_plaintext_primary():
    env = MemEnv()
    crypto = _crypto()
    writer = DualWALWriter(env, "/dw.log", crypto)
    for i in range(50):
        writer.add_record(b"r%02d" % i)
    writer.sync()
    # Crash before the encryption worker drains: the encrypted secondary is
    # behind, the plaintext primary is complete.
    writer.simulate_process_crash()
    plain = read_wal_records(env, "/dw.log.plain", PlaintextCryptoProvider())
    encrypted = read_wal_records(env, "/dw.log", _Resolver(crypto))
    assert len(plain) == 50
    assert len(encrypted) <= 50


def test_dual_wal_rotation_deletes_plaintext():
    env = MemEnv()
    writer = DualWALWriter(env, "/dw.log", _crypto())
    writer.add_record(b"r")
    _drain(writer)
    writer.rotate(env)
    assert not env.file_exists("/dw.log.plain")
    assert env.file_exists("/dw.log")


def _mapping_setup():
    clock = VirtualClock()
    kds = MappingKDS(clock=clock, request_latency_s=0.001)
    kds.authorize_server("s1")
    return clock, kds


def test_mapping_kds_register_resolve():
    clock, kds = _mapping_setup()
    dek = kds.provision("s1")
    kds.register_file("s1", "/db/000001.sst", dek.dek_id)
    resolved = kds.resolve_file("s1", "/db/000001.sst")
    assert resolved == dek
    with pytest.raises(NotFoundError):
        kds.resolve_file("s1", "/db/unknown.sst")


def test_mapping_kds_rename_fixup():
    clock, kds = _mapping_setup()
    dek = kds.provision("s1")
    kds.register_file("s1", "/db/tmp-0001.sst", dek.dek_id)
    kds.fixup_rename("s1", "/db/tmp-0001.sst", "/db/000001.sst")
    assert kds.resolve_file("s1", "/db/000001.sst") == dek
    with pytest.raises(NotFoundError):
        kds.resolve_file("s1", "/db/tmp-0001.sst")
    with pytest.raises(KeyManagementError):
        kds.fixup_rename("s1", "/db/never-existed", "/db/x")


def test_mapping_kds_charges_latency_per_metadata_op():
    clock, kds = _mapping_setup()
    dek = kds.provision("s1")              # 1 trip
    kds.register_file("s1", "/f", dek.dek_id)  # 1 trip
    kds.resolve_file("s1", "/f")           # 2 trips (resolve + fetch)
    assert clock.total_slept == pytest.approx(0.004)


def test_db_runs_on_mapping_provider():
    """The strawman is functional end to end (fair ablation baseline)."""
    clock, kds = _mapping_setup()
    env = MemEnv()
    provider = MappingCryptoProvider(kds, "s1")
    options = Options(
        env=env,
        crypto_provider=provider,
        write_buffer_size=4 * 1024,
        block_size=1024,
    )
    db = DB("/db", options)
    try:
        for i in range(500):
            db.put(b"key-%04d" % i, b"secret-%04d" % i)
        db.compact_range()
        for i in range(0, 500, 41):
            assert db.get(b"key-%04d" % i) == b"secret-%04d" % i
        assert provider.extra_round_trips > 0
    finally:
        db.close()
    # Reopen: every file open costs a central-mapping round trip.
    trips_before = MappingCryptoProvider(kds, "s1").extra_round_trips
    provider2 = MappingCryptoProvider(kds, "s1")
    db2 = DB("/db", Options(env=env, crypto_provider=provider2))
    try:
        assert db2.get(b"key-0000") == b"secret-0000"
        assert provider2.extra_round_trips > trips_before
    finally:
        db2.close()


def test_mapping_grows_with_files_single_point_of_failure():
    clock, kds = _mapping_setup()
    dek = kds.provision("s1")
    for i in range(10):
        kds.register_file("s1", f"/db/{i:06d}.sst", dek.dek_id)
    assert kds.mapping_size() == 10
    kds.unregister_file("s1", "/db/000003.sst")
    assert kds.mapping_size() == 9
