"""Tests for the KeyClient façade (KDS + secure cache)."""

import pytest

from repro.errors import NotFoundError
from repro.keys.cache import SecureDEKCache
from repro.keys.client import KeyClient
from repro.keys.kds import InMemoryKDS, SimulatedKDS
from repro.util.clock import VirtualClock


def test_new_dek_provisioned_and_cached(tmp_path):
    kds = InMemoryKDS()
    cache = SecureDEKCache(str(tmp_path / "c.db"), "pw", iterations=10)
    client = KeyClient(kds, "server-1", cache=cache)
    dek = client.new_dek()
    assert cache.get(dek.dek_id) == dek
    assert kds.knows(dek.dek_id)


def test_get_dek_prefers_cache(tmp_path):
    clock = VirtualClock()
    kds = SimulatedKDS(clock=clock, request_latency_s=1.0)
    kds.authorize_server("server-1")
    cache = SecureDEKCache(str(tmp_path / "c.db"), "pw", iterations=10)
    client = KeyClient(kds, "server-1", cache=cache)
    dek = client.new_dek()
    slept_after_provision = clock.total_slept
    for _ in range(5):
        assert client.get_dek(dek.dek_id) == dek
    # No further KDS latency was charged: the cache absorbed all lookups.
    assert clock.total_slept == slept_after_provision
    assert client.stats.counter("keyclient.cache_hits").value == 5
    assert client.stats.counter("keyclient.kds_fetches").value == 0


def test_get_dek_falls_back_to_kds():
    kds = InMemoryKDS()
    producer = KeyClient(kds, "server-1")
    consumer = KeyClient(kds, "server-2")
    dek = producer.new_dek()
    assert consumer.get_dek(dek.dek_id) == dek
    assert consumer.stats.counter("keyclient.kds_fetches").value == 1


def test_kds_fetch_populates_cache(tmp_path):
    kds = InMemoryKDS()
    producer = KeyClient(kds, "server-1")
    dek = producer.new_dek()
    cache = SecureDEKCache(str(tmp_path / "c.db"), "pw", iterations=10)
    consumer = KeyClient(kds, "server-2", cache=cache)
    consumer.get_dek(dek.dek_id)
    assert cache.get(dek.dek_id) == dek
    consumer.get_dek(dek.dek_id)
    assert consumer.stats.counter("keyclient.kds_fetches").value == 1


def test_retire_removes_everywhere(tmp_path):
    kds = InMemoryKDS()
    cache = SecureDEKCache(str(tmp_path / "c.db"), "pw", iterations=10)
    client = KeyClient(kds, "server-1", cache=cache)
    dek = client.new_dek()
    client.retire_dek(dek.dek_id)
    assert not kds.knows(dek.dek_id)
    assert cache.get(dek.dek_id) is None
    with pytest.raises(NotFoundError):
        client.get_dek(dek.dek_id)


def test_default_scheme_override():
    client = KeyClient(InMemoryKDS(), "s", default_scheme="aes-128-ctr")
    dek = client.new_dek()
    assert dek.scheme == "aes-128-ctr"
    assert len(dek.key) == 16
    chacha = client.new_dek(scheme="chacha20")
    assert chacha.scheme == "chacha20"
