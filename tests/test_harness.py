"""Tests for the benchmark harness's measurement helpers."""

import time

from repro.bench.harness import (
    RunResult,
    format_table,
    measure_ops,
    relative_overhead,
)


def test_measure_ops_counts_and_times():
    result = measure_ops("demo", (lambda: time.sleep(0.001) for _ in range(5)))
    assert result.ops == 5
    assert result.elapsed_s >= 0.005
    assert len(result.latencies_s) == 5
    assert result.throughput > 0
    assert result.mean_us >= 1000


def test_measure_ops_without_latencies():
    result = measure_ops("demo", (lambda: None for _ in range(10)),
                         record_latencies=False)
    assert result.ops == 10
    assert result.latencies_s == []
    assert result.p99_us == 0.0


def test_run_result_percentiles():
    result = RunResult(
        name="r", ops=100, elapsed_s=1.0,
        latencies_s=[i / 1e6 for i in range(1, 101)],
    )
    assert 49 < result.p50_us < 52
    assert 98 < result.p99_us <= 100
    assert result.mean_us > 0


def test_relative_overhead_zero_baseline():
    zero = RunResult(name="z", ops=0, elapsed_s=0.0)
    other = RunResult(name="o", ops=10, elapsed_s=1.0)
    assert relative_overhead(zero, other) == 0.0


def test_ascii_bar_chart():
    from repro.bench.harness import ascii_bar_chart

    rows = [
        RunResult(name="fast", ops=1000, elapsed_s=1.0),
        RunResult(name="slow", ops=250, elapsed_s=1.0),
    ]
    chart = ascii_bar_chart("demo", rows, width=40)
    lines = chart.splitlines()
    assert "demo" in lines[0]
    fast_bar = lines[1].count("#")
    slow_bar = lines[2].count("#")
    assert fast_bar == 40          # peak fills the width
    assert 8 <= slow_bar <= 12     # ~25% of peak
    assert "1,000" in lines[1]
    assert ascii_bar_chart("empty", []).endswith("(no data)")


def test_format_table_without_baseline():
    rows = [RunResult(name="only", ops=10, elapsed_s=0.5)]
    table = format_table("t", rows)
    assert "overhead" not in table
    assert "only" in table
