"""Tests for the CLI tools (dbbench, sst_dump, dek_audit)."""

import pytest

from repro.crypto.cipher import generate_key
from repro.env.local import LocalEnv
from repro.lsm.db import DB
from repro.lsm.filecrypto import SingleKeyCryptoProvider
from repro.lsm.options import Options
from repro.tools import dbbench, dek_audit, sst_dump


def _make_local_db(tmp_path, provider=None, n=300):
    env = LocalEnv()
    path = str(tmp_path / "db")
    env.mkdirs(path)
    options = Options(
        env=env,
        write_buffer_size=4 * 1024,
        block_size=1024,
        crypto_provider=provider,
    )
    db = DB(path, options)
    for i in range(n):
        db.put(b"key-%04d" % i, b"value-%04d" % i)
    db.flush()
    db.close()
    return env, path


def test_dbbench_fillrandom_runs(capsys):
    rc = dbbench.main(
        ["--benchmarks", "fillrandom", "--systems", "baseline,shield",
         "--num", "400"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "fillrandom" in out
    assert "baseline" in out
    assert "shield" in out
    assert "overhead" in out


def test_dbbench_readrandom_and_ycsb(capsys):
    rc = dbbench.main(
        ["--benchmarks", "readrandom,ycsb-C", "--systems", "baseline",
         "--num", "200", "--value-size", "64"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "readrandom" in out
    assert "ycsb-C" in out


def test_dbbench_ds_mode(capsys):
    rc = dbbench.main(
        ["--ds", "--benchmarks", "fillrandom",
         "--systems", "baseline,shield+walbuf", "--num", "200",
         "--latency-scale", "0.0"]
    )
    assert rc == 0
    assert "overhead" in capsys.readouterr().out


def test_dbbench_ds_offload_mode(capsys):
    rc = dbbench.main(
        ["--ds", "--offload-compaction", "--benchmarks", "fillrandom",
         "--systems", "shield", "--num", "200", "--latency-scale", "0.0"]
    )
    assert rc == 0


def test_dbbench_ds_rejects_encfs():
    with pytest.raises(SystemExit):
        dbbench.main(["--ds", "--systems", "encfs", "--num", "10"])


def test_dbbench_rejects_unknown_system():
    with pytest.raises(SystemExit):
        dbbench.main(["--systems", "mysql"])


def test_dbbench_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        dbbench.main(["--benchmarks", "fizzbuzz", "--num", "10"])


def test_sst_dump_plaintext(tmp_path, capsys):
    env, path = _make_local_db(tmp_path)
    sst = next(n for n in env.list_dir(path) if n.endswith(".sst"))
    rc = sst_dump.main(["--scan", "--limit", "3", f"{path}/{sst}"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "kind       : sst" in out
    assert "plaintext" in out
    assert "num_entries" in out
    assert "PUT" in out


def test_sst_dump_encrypted_envelope_only(tmp_path, capsys):
    key = generate_key("shake-ctr")
    provider = SingleKeyCryptoProvider("shake-ctr", key, dek_id="dek-dump")
    env, path = _make_local_db(tmp_path, provider=provider)
    sst = next(n for n in env.list_dir(path) if n.endswith(".sst"))
    rc = sst_dump.main([f"{path}/{sst}"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "dek_id     : dek-dump" in out
    assert "pass --key" in out
    # With the key, properties become readable.
    rc = sst_dump.main(["--key", key.hex(), f"{path}/{sst}"])
    out = capsys.readouterr().out
    assert "num_entries" in out


def test_dek_audit_clean_encrypted_db(tmp_path, capsys):
    provider = SingleKeyCryptoProvider(
        "shake-ctr", generate_key("shake-ctr")
    )
    env, path = _make_local_db(tmp_path, provider=provider)
    rc = dek_audit.main([path])
    out = capsys.readouterr().out
    assert rc == 0
    assert "OK: all user-data files encrypted" in out
    assert "shared by multiple files" in out  # single-DEK design note


def test_dek_audit_flags_plaintext(tmp_path, capsys):
    env, path = _make_local_db(tmp_path)  # no encryption
    rc = dek_audit.main([path])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FINDING: plaintext user-data files" in out


def test_repair_cli(tmp_path, capsys):
    from repro.tools import repair as repair_cli

    env, path = _make_local_db(tmp_path)
    # Destroy the metadata, then repair through the CLI.
    import os

    for name in list(env.list_dir(path)):
        if name.startswith("MANIFEST") or name == "CURRENT":
            os.remove(f"{path}/{name}")
    rc = repair_cli.main([path])
    assert rc == 0
    assert "fresh MANIFEST written" in capsys.readouterr().out
    db = DB(path, Options(env=env))
    try:
        assert db.get(b"key-0001") == b"value-0001"
    finally:
        db.close()


def test_dek_audit_report_structure(tmp_path):
    env, path = _make_local_db(tmp_path)
    report = dek_audit.audit_directory(env, path)
    kinds = {row["kind"] for row in report["rows"] if "kind" in row}
    assert {"sst", "wal", "manifest"} <= kinds
    assert not report["duplicate_key_nonce_pairs"]
