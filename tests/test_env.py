"""Tests for the Env abstraction: LocalEnv, MemEnv (incl. crash semantics),
MeteredEnv, and LatencyEnv."""

import pytest

from repro.env import (
    LatencyEnv,
    LatencyModel,
    LocalEnv,
    MemEnv,
    MeteredEnv,
    classify_path,
)
from repro.errors import IOError_
from repro.util.clock import VirtualClock


@pytest.fixture(params=["local", "mem"])
def env(request, tmp_path):
    if request.param == "local":
        local = LocalEnv()
        local.mkdirs(str(tmp_path / "db"))
        return local, str(tmp_path / "db")
    mem = MemEnv()
    mem.mkdirs("/db")
    return mem, "/db"


def test_write_read_roundtrip(env):
    e, root = env
    path = f"{root}/file.sst"
    e.write_file(path, b"hello world")
    assert e.read_file(path) == b"hello world"
    assert e.file_size(path) == 11
    assert e.file_exists(path)


def test_append_and_tell(env):
    e, root = env
    path = f"{root}/file.log"
    with e.new_writable_file(path) as handle:
        handle.append(b"abc")
        handle.append(b"def")
        assert handle.tell() == 6
        handle.sync()
    assert e.read_file(path) == b"abcdef"


def test_random_access_read(env):
    e, root = env
    path = f"{root}/file.sst"
    e.write_file(path, bytes(range(100)))
    with e.new_random_access_file(path) as handle:
        assert handle.read(10, 5) == bytes(range(10, 15))
        assert handle.size() == 100
        assert handle.read(95, 50) == bytes(range(95, 100))  # short read at EOF


def test_concurrent_positioned_reads(env):
    """One shared RandomAccessFile, many threads, distinct offsets.

    Regression for a seek()+read() race in LocalEnv: two threads
    interleaving on the shared handle would both read from the second
    thread's offset, which the engine then reports as block-checksum
    corruption.  Positioned reads must be atomic per call.
    """
    import threading

    e, root = env
    path = f"{root}/file.sst"
    block = 512
    blocks = 64
    data = b"".join(
        bytes([i]) * block for i in range(blocks)
    )
    e.write_file(path, data)
    mismatches = []
    with e.new_random_access_file(path) as handle:
        def reader(seed: int) -> None:
            import random

            rand = random.Random(seed)
            for _ in range(400):
                i = rand.randrange(blocks)
                got = handle.read(i * block, block)
                if got != bytes([i]) * block:
                    mismatches.append(i)

        threads = [threading.Thread(target=reader, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert not mismatches


def test_delete_rename_list(env):
    e, root = env
    e.write_file(f"{root}/a.sst", b"a")
    e.write_file(f"{root}/b.sst", b"b")
    e.rename_file(f"{root}/a.sst", f"{root}/c.sst")
    assert not e.file_exists(f"{root}/a.sst")
    assert e.read_file(f"{root}/c.sst") == b"a"
    assert set(e.list_dir(root)) == {"b.sst", "c.sst"}
    e.delete_file(f"{root}/b.sst")
    assert e.list_dir(root) == ["c.sst"]
    e.delete_file(f"{root}/missing")  # idempotent


def test_missing_file_errors(env):
    e, root = env
    with pytest.raises(IOError_):
        e.new_random_access_file(f"{root}/nope")
    with pytest.raises(IOError_):
        e.file_size(f"{root}/nope")


def test_rename_missing_raises():
    env = MemEnv()
    with pytest.raises(IOError_):
        env.rename_file("/a", "/b")


def test_mem_crash_system_loses_unsynced():
    env = MemEnv()
    handle = env.new_writable_file("/wal.log")
    handle.append(b"synced-part")
    handle.sync()
    handle.append(b"UNSYNCED")
    env.crash_system()
    assert env.read_file("/wal.log") == b"synced-part"


def test_mem_crash_process_keeps_os_buffer():
    env = MemEnv()
    handle = env.new_writable_file("/wal.log")
    handle.append(b"synced")
    handle.sync()
    handle.append(b"-os-buffered")
    env.crash_process()
    assert env.read_file("/wal.log") == b"synced-os-buffered"


def test_mem_write_after_close_rejected():
    env = MemEnv()
    handle = env.new_writable_file("/f")
    handle.close()
    with pytest.raises(IOError_):
        handle.append(b"x")


def test_mem_nested_list_dir():
    env = MemEnv()
    env.write_file("/db/sub/file.sst", b"x")
    env.write_file("/db/top.sst", b"y")
    assert env.list_dir("/db") == ["sub", "top.sst"]


def test_classify_path():
    assert classify_path("/db/000001.log") == "wal"
    assert classify_path("/db/000007.sst") == "sst"
    assert classify_path("/db/MANIFEST-000002") == "manifest"
    assert classify_path("/db/CURRENT") == "manifest"
    assert classify_path("/db/OPTIONS") == "other"


def test_metered_env_counts():
    metered = MeteredEnv(MemEnv())
    metered.write_file("/db/1.sst", b"x" * 100)
    metered.write_file("/db/1.log", b"y" * 50)
    metered.read_file("/db/1.sst")
    assert metered.written_bytes("sst") == 100
    assert metered.written_bytes("wal") == 50
    assert metered.written_bytes() == 150
    assert metered.read_bytes("sst") == 100
    assert metered.read_bytes() == 100
    assert metered.stats.counter("io.write.ops.sst").value == 1


def test_metered_env_passthrough_ops():
    metered = MeteredEnv(MemEnv())
    metered.write_file("/a.sst", b"1")
    metered.rename_file("/a.sst", "/b.sst")
    assert metered.file_exists("/b.sst")
    assert metered.file_size("/b.sst") == 1
    metered.delete_file("/b.sst")
    assert not metered.file_exists("/b.sst")


def test_metered_env_namespace_op_counters():
    metered = MeteredEnv(MemEnv())
    metered.write_file("/db/1.sst", b"1")
    metered.write_file("/db/2.log", b"2")
    metered.rename_file("/db/2.log", "/db/3.log")
    metered.list_dir("/db")
    metered.list_dir("/db")
    metered.delete_file("/db/1.sst")
    assert metered.namespace_ops("rename", "wal") == 1
    assert metered.namespace_ops("delete", "sst") == 1
    assert metered.namespace_ops("list") == 2
    assert metered.stats.counter("io.delete.ops.sst").value == 1
    assert metered.stats.counter("io.rename.ops.wal").value == 1
    assert metered.stats.counter("io.list.ops").value == 2


def test_metered_env_io_time_histograms():
    metered = MeteredEnv(MemEnv())
    with metered.new_writable_file("/db/1.log") as handle:
        handle.append(b"x" * 64)
        handle.sync()
    metered.read_file("/db/1.log")
    snap = metered.stats.snapshot()
    assert snap["io.write_s.wal.count"] >= 1
    assert snap["io.sync_s.wal.count"] == 1
    assert snap["io.read_s.wal.count"] >= 1


def test_latency_model_costs():
    model = LatencyModel(read_op_s=0.001, write_op_s=0.002, bandwidth_bytes_per_s=1000)
    assert model.read_cost(1000) == pytest.approx(1.001)
    assert model.write_cost(0) == pytest.approx(0.002)
    unlimited = LatencyModel()
    assert unlimited.read_cost(10 ** 9) == 0.0


def test_latency_env_charges_clock():
    clock = VirtualClock()
    model = LatencyModel(read_op_s=0.5, write_op_s=1.0, bandwidth_bytes_per_s=100)
    env = LatencyEnv(MemEnv(), model, clock=clock)
    env.write_file("/f.sst", b"x" * 100)  # open(1.0) + append(1.0 + 1.0) + sync(1.0)
    assert clock.now() == pytest.approx(4.0)
    env.read_file("/f.sst")  # open(0.5) + read(0.5 + 1.0)
    assert clock.now() == pytest.approx(6.0)
