"""Tests for the byte-charged LRU cache."""

import threading

import pytest

from repro.util.lru import LRUCache


def test_basic_put_get():
    cache = LRUCache(100)
    cache.put("a", 1, charge=10)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", default=-1) == -1


def test_eviction_by_charge():
    cache = LRUCache(30)
    cache.put("a", "A", charge=10)
    cache.put("b", "B", charge=10)
    cache.put("c", "C", charge=10)
    cache.put("d", "D", charge=10)  # evicts "a"
    assert cache.get("a") is None
    assert cache.get("d") == "D"
    assert cache.evictions == 1


def test_get_refreshes_recency():
    cache = LRUCache(20)
    cache.put("a", "A", charge=10)
    cache.put("b", "B", charge=10)
    cache.get("a")
    cache.put("c", "C", charge=10)  # should evict "b", not "a"
    assert cache.get("a") == "A"
    assert cache.get("b") is None


def test_overwrite_updates_charge():
    cache = LRUCache(20)
    cache.put("a", "A", charge=10)
    cache.put("a", "A2", charge=5)
    assert cache.usage == 5
    assert cache.get("a") == "A2"
    assert len(cache) == 1


def test_oversized_entry_evicts_everything_else():
    cache = LRUCache(10)
    cache.put("a", "A", charge=5)
    cache.put("big", "B", charge=50)
    # The oversized entry itself stays (capacity is a soft target once the
    # cache is down to one entry), everything else is gone.
    assert cache.get("a") is None


def test_remove_and_clear():
    cache = LRUCache(100)
    cache.put("a", 1, charge=10)
    cache.remove("a")
    assert cache.get("a") is None
    assert cache.usage == 0
    cache.put("b", 2, charge=10)
    cache.clear()
    assert len(cache) == 0
    assert cache.usage == 0


def test_get_or_load():
    cache = LRUCache(100)
    calls = []

    def loader():
        calls.append(1)
        return "loaded", 10

    assert cache.get_or_load("k", loader) == "loaded"
    assert cache.get_or_load("k", loader) == "loaded"
    assert len(calls) == 1


def test_contains():
    cache = LRUCache(100)
    cache.put("a", 1)
    assert "a" in cache
    assert "b" not in cache


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(-1)


def test_hit_miss_accounting():
    cache = LRUCache(100)
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    assert cache.hits == 1
    assert cache.misses == 1


def test_thread_safety_smoke():
    cache = LRUCache(1000)
    errors = []

    def worker(worker_id):
        try:
            for i in range(200):
                cache.put((worker_id, i), i, charge=1)
                cache.get((worker_id, i))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
