"""Systematic crash-injection matrix.

Crash kinds (Section 5.3's persistence analysis):

- *process* crash: the OS page cache survives -- everything appended to a
  WAL is recoverable; only SHIELD's application buffer is lost.
- *system* crash: unsynced page-cache bytes are lost too -- only data
  synced (explicitly, or by flush/compaction) survives.

For every system x crash kind we verify the recovered state is a correct
prefix: every surviving key has its latest value, and synced keys always
survive.
"""

import pytest

from repro.bench.systems import make_system
from repro.env.mem import MemEnv
from repro.keys.kds import InMemoryKDS
from repro.lsm.db import DB
from repro.lsm.options import Options, WriteOptions
from repro.shield import ShieldOptions, open_shield_db


def _options(env, **overrides):
    defaults = dict(env=env, write_buffer_size=4 * 1024, block_size=1024)
    defaults.update(overrides)
    return Options(**defaults)


def _open(system, env, kds, wal_buffer=0):
    if system == "baseline":
        return DB("/crash", _options(env, wal_buffer_size=wal_buffer))
    if system == "encfs":
        from repro.encfs.env import EncryptedEnv

        return DB(
            "/crash",
            _options(EncryptedEnv(env, b"k" * 32), wal_buffer_size=wal_buffer),
        )
    shield = ShieldOptions(kds=kds, wal_buffer_size=wal_buffer)
    return open_shield_db("/crash", shield, _options(env))


class _SharedEncFS:
    """EncFS needs the same instance key across 'restarts'."""


@pytest.mark.parametrize("system", ["baseline", "shield"])
@pytest.mark.parametrize("crash", ["process", "system"])
def test_crash_matrix_unbuffered(system, crash):
    env = MemEnv()
    kds = InMemoryKDS()
    db = _open(system, env, kds, wal_buffer=0)
    for i in range(200):
        db.put(b"key-%04d" % i, b"v%04d" % i)
    db.put(b"synced-key", b"synced-value", WriteOptions(sync=True))
    for i in range(200, 230):
        db.put(b"key-%04d" % i, b"late-%04d" % i)
    db.simulate_crash()
    if crash == "system":
        env.crash_system()

    recovered = _open(system, env, kds, wal_buffer=0)
    try:
        # Explicitly synced data survives every crash kind.
        assert recovered.get(b"synced-key") == b"synced-value"
        if crash == "process":
            # Unbuffered WAL + process crash: everything appended survives.
            for i in range(230):
                assert recovered.get(b"key-%04d" % i) is not None
        # Whatever survived must carry its *latest* value (prefix property).
        for i in range(230):
            value = recovered.get(b"key-%04d" % i)
            expected = b"late-%04d" % i if i >= 200 else b"v%04d" % i
            assert value in (None, expected)
    finally:
        recovered.close()


@pytest.mark.parametrize("crash", ["process", "system"])
def test_crash_matrix_wal_buffer(crash):
    """SHIELD's WAL buffer: the buffered tail is lost on either crash, but
    everything the buffer flushed is recoverable after a process crash."""
    env = MemEnv()
    kds = InMemoryKDS()
    db = _open("shield", env, kds, wal_buffer=256)
    for i in range(100):
        db.put(b"key-%04d" % i, b"x" * 100)  # >> buffer: most get flushed
    db.put(b"tail-key", b"tail-value")       # likely still buffered
    db.simulate_crash()
    if crash == "system":
        env.crash_system()

    recovered = _open("shield", env, kds)
    try:
        survived = sum(
            1 for i in range(100) if recovered.get(b"key-%04d" % i) is not None
        )
        if crash == "process":
            # All flushed records survive; at most the final buffer is lost.
            assert survived >= 95
        # Values that survive are intact.
        for i in range(100):
            value = recovered.get(b"key-%04d" % i)
            assert value in (None, b"x" * 100)
    finally:
        recovered.close()


def test_sync_flushes_shield_wal_buffer():
    env = MemEnv()
    kds = InMemoryKDS()
    db = _open("shield", env, kds, wal_buffer=4096)
    db.put(b"must-survive", b"1", WriteOptions(sync=True))
    db.simulate_crash()
    env.crash_system()
    recovered = _open("shield", env, kds)
    try:
        assert recovered.get(b"must-survive") == b"1"
    finally:
        recovered.close()


def test_crash_during_heavy_compaction_load():
    """Crash while flushes/compactions are in flight; recovery must yield a
    consistent database (no corruption, latest-or-nothing values)."""
    env = MemEnv()
    options = _options(
        env,
        level0_file_num_compaction_trigger=2,
        max_background_jobs=2,
    )
    db = DB("/crash", options)
    for i in range(2000):
        db.put(b"key-%05d" % (i % 500), b"gen-%05d" % i)
    db.simulate_crash()

    recovered = DB("/crash", _options(env))
    try:
        for i in range(500):
            value = recovered.get(b"key-%05d" % i)
            assert value is not None
            assert value.startswith(b"gen-")
            generation = int(value[4:])
            assert generation % 500 == i  # value belongs to this key
    finally:
        recovered.close()


def test_double_crash_recovery():
    """Crash during the run, reopen, crash again immediately, reopen."""
    env = MemEnv()
    db = DB("/crash", _options(env))
    for i in range(300):
        db.put(b"key-%04d" % i, b"v")
    db.simulate_crash()
    second = DB("/crash", _options(env))
    second.simulate_crash()
    third = DB("/crash", _options(env))
    try:
        for i in range(300):
            assert third.get(b"key-%04d" % i) == b"v"
    finally:
        third.close()


def test_orphan_sst_garbage_collected():
    """A half-written SST from a crashed flush is removed on recovery."""
    env = MemEnv()
    db = DB("/crash", _options(env))
    db.put(b"k", b"v")
    db.close()
    # Plant an orphan file that no MANIFEST references.
    env.write_file("/crash/009999.sst", b"LSMFgarbage-from-crashed-flush")
    recovered = DB("/crash", _options(env))
    try:
        assert not env.file_exists("/crash/009999.sst")
        assert recovered.get(b"k") == b"v"
    finally:
        recovered.close()


def test_recovery_is_idempotent():
    env = MemEnv()
    db = DB("/crash", _options(env))
    for i in range(100):
        db.put(b"key-%03d" % i, b"v%03d" % i)
    db.close()
    for _ in range(3):
        db = DB("/crash", _options(env))
        for i in range(100):
            assert db.get(b"key-%03d" % i) == b"v%03d" % i
        db.close()
