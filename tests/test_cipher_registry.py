"""Tests for the cipher registry and crypto cost accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import cipher as cipher_mod
from repro.crypto.cipher import (
    CRYPTO_STATS,
    available_schemes,
    create_cipher,
    generate_key,
    generate_nonce,
    scheme_id,
    scheme_name,
    spec_for,
)
from repro.errors import EncryptionError


def test_all_schemes_registered():
    assert set(available_schemes()) == {
        "aes-128-ctr",
        "aes-256-ctr",
        "chacha20",
        "shake-ctr",
        "aes-256-gcm",
        "chacha20-poly1305",
        "shake-etm",
    }


def test_scheme_id_name_roundtrip():
    for name in available_schemes():
        assert scheme_name(scheme_id(name)) == name


def test_scheme_ids_unique_and_nonzero():
    ids = [scheme_id(name) for name in available_schemes()]
    assert len(set(ids)) == len(ids)
    assert 0 not in ids  # 0 is reserved for "no encryption"


def test_unknown_scheme_rejected():
    with pytest.raises(EncryptionError):
        spec_for("rot13")
    with pytest.raises(EncryptionError):
        spec_for(99)


def test_generate_key_nonce_sizes():
    for name in available_schemes():
        spec = spec_for(name)
        assert len(generate_key(name)) == spec.key_size
        assert len(generate_nonce(name)) == spec.nonce_size


def test_create_cipher_validates_sizes():
    with pytest.raises(EncryptionError):
        create_cipher("aes-128-ctr", bytes(8), bytes(12))
    with pytest.raises(EncryptionError):
        create_cipher("aes-128-ctr", bytes(16), bytes(16))


def test_context_init_accounting():
    before = CRYPTO_STATS.counter("crypto.context_inits").value
    create_cipher("shake-ctr", bytes(32), bytes(16))
    create_cipher("aes-128-ctr", bytes(16), bytes(12))
    after = CRYPTO_STATS.counter("crypto.context_inits").value
    assert after - before == 2


def test_bytes_accounting():
    ctx = create_cipher("shake-ctr", bytes(32), bytes(16))
    before = CRYPTO_STATS.counter("crypto.bytes").value
    ctx.xor_at(b"x" * 100, 0)
    assert CRYPTO_STATS.counter("crypto.bytes").value - before == 100


@pytest.mark.parametrize("scheme", ["aes-128-ctr", "aes-256-ctr", "chacha20", "shake-ctr"])
def test_every_scheme_roundtrips(scheme):
    key = generate_key(scheme)
    nonce = generate_nonce(scheme)
    ctx = create_cipher(scheme, key, nonce)
    data = b"the quick brown fox jumps over the lazy dog" * 3
    encrypted = ctx.xor_at(data, 1234)
    assert encrypted != data
    assert ctx.xor_at(encrypted, 1234) == data


@given(st.sampled_from(["aes-128-ctr", "chacha20", "shake-ctr"]), st.binary(min_size=16, max_size=128))
def test_ciphertext_differs_from_plaintext(scheme, data):
    ctx = create_cipher(scheme, generate_key(scheme), generate_nonce(scheme))
    # A fresh random key's keystream matching >= 16 plaintext bytes has
    # probability 2^-128 -- short inputs are excluded because a 1-byte
    # plaintext collides with probability 1/256 per generated key, which
    # a property test *will* eventually hit.
    assert ctx.xor_at(data, 0) != data
