"""ChaCha20 pinned to RFC 8439 test vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.chacha20 import ChaCha20Cipher, chacha20_block
from repro.errors import EncryptionError


def test_rfc8439_block_function():
    # RFC 8439 Section 2.3.2.
    key = bytes(range(32))
    nonce = bytes.fromhex("000000090000004a00000000")
    expected = bytes.fromhex(
        "10f1e7e4d13b5915500fdd1fa32071c4"
        "c7d1f4c733c068030422aa9ac3d46c4e"
        "d2826446079faa0914c2d705d98b02a2"
        "b5129cd1de164eb9cbd083e8a2503c4e"
    )
    assert chacha20_block(key, 1, nonce) == expected


def test_rfc8439_encryption_vector():
    # RFC 8439 Section 2.4.2: the "Ladies and Gentlemen" sunscreen text.
    key = bytes(range(32))
    nonce = bytes.fromhex("000000000000004a00000000")
    plaintext = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it."
    )
    expected = bytes.fromhex(
        "6e2e359a2568f98041ba0728dd0d6981"
        "e97e7aec1d4360c20a27afccfd9fae0b"
        "f91b65c5524733ab8f593dabcd62b357"
        "1639d624e65152ab8f530c359f0861d8"
        "07ca0dbf500d6a6156a38e088a22b65e"
        "52bc514d16ccf806818ce91ab7793736"
        "5af90bbf74a35be6b40b8eedf2785e42"
        "874d"
    )
    cipher = ChaCha20Cipher(key, nonce)
    # RFC starts the data at counter 1, i.e. byte offset 64.
    assert cipher.xor_at(plaintext, 64) == expected


def test_seekable_keystream():
    cipher = ChaCha20Cipher(bytes(32), bytes(12))
    full = cipher.keystream(0, 200)
    assert cipher.keystream(70, 60) == full[70:130]


def test_bad_sizes():
    with pytest.raises(EncryptionError):
        ChaCha20Cipher(bytes(16), bytes(12))
    with pytest.raises(EncryptionError):
        ChaCha20Cipher(bytes(32), bytes(8))
    with pytest.raises(EncryptionError):
        chacha20_block(bytes(32), 0, bytes(8))


@given(st.binary(max_size=300), st.integers(min_value=0, max_value=10_000))
def test_involution(data, offset):
    cipher = ChaCha20Cipher(bytes(32), bytes(12))
    assert cipher.xor_at(cipher.xor_at(data, offset), offset) == data
