"""Additional NIST vectors and cross-cipher properties."""

from repro.crypto.aes import AES
from repro.crypto.ctr import CtrCipher

# SP 800-38A F.5.5: CTR-AES256.Encrypt
_KEY_256 = bytes.fromhex(
    "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4"
)
_NONCE = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafb")
_START_COUNTER = 0xFCFDFEFF
_PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
_CIPHERTEXT_256 = bytes.fromhex(
    "601ec313775789a5b7a7f504bbf3d228"
    "f443e3ca4d62b59aca84e990cacaf5c5"
    "2b0930daa23de94ce87017ba2d84988d"
    "dfc9c58db67aada613c2dd08457941a6"
)

# SP 800-38A F.5.3: CTR-AES192.Encrypt
_KEY_192 = bytes.fromhex(
    "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b"
)
_CIPHERTEXT_192 = bytes.fromhex(
    "1abc932417521ca24f2b0459fe7e6e0b"
    "090339ec0aa6faefd5ccc2c6f4ce8e94"
    "1e36b26bd1ebc670d1bd1d665620abf7"
    "4f78a7f6d29809585a97daec58c6b050"
)


def test_sp800_38a_ctr_aes256():
    cipher = CtrCipher(AES(_KEY_256), _NONCE)
    assert cipher.xor_at(_PLAINTEXT, _START_COUNTER * 16) == _CIPHERTEXT_256


def test_sp800_38a_ctr_aes192():
    cipher = CtrCipher(AES(_KEY_192), _NONCE)
    assert cipher.xor_at(_PLAINTEXT, _START_COUNTER * 16) == _CIPHERTEXT_192


def test_ciphers_produce_distinct_keystreams():
    """Different schemes with byte-identical keys/nonces must not share a
    keystream (domain separation across cipher families)."""
    from repro.crypto.chacha20 import ChaCha20Cipher
    from repro.crypto.xof import ShakeCtrCipher

    chacha = ChaCha20Cipher(bytes(32), bytes(12)).keystream(0, 64)
    shake = ShakeCtrCipher(bytes(32), bytes(16)).keystream(0, 64)
    aes = CtrCipher(AES(bytes(16)), bytes(12)).keystream(0, 64)
    assert len({chacha, shake, aes}) == 3
