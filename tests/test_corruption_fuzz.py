"""Corruption fuzzing: no silent wrong answers, ever.

Property: flip any single byte of any persistent file; every subsequent
read either returns the *correct* value or raises a loud error
(CorruptionError / EncryptionError / KeyManagementError / IOError_).
Returning wrong data silently would be a durability-integrity bug.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.cipher import generate_key
from repro.env.mem import MemEnv
from repro.errors import ReproError
from repro.lsm.db import DB
from repro.lsm.filecrypto import SingleKeyCryptoProvider
from repro.lsm.options import Options

_N = 300
_EXPECTED = {b"key-%04d" % i: b"value-%04d" % i for i in range(_N)}


def _build_db(encrypted: bool):
    env = MemEnv()
    provider = (
        SingleKeyCryptoProvider("shake-ctr", generate_key("shake-ctr"))
        if encrypted
        else None
    )
    options = Options(
        env=env,
        crypto_provider=provider,
        write_buffer_size=8 * 1024,
        block_size=1024,
    )
    db = DB("/fz", options)
    for key, value in _EXPECTED.items():
        db.put(key, value)
    db.compact_range()
    db.close()
    files = [
        (name, env.file_size(f"/fz/{name}"))
        for name in env.list_dir("/fz")
        if name != "CURRENT"
    ]
    return env, options, files


_PLAIN_ENV, _PLAIN_OPTIONS, _PLAIN_FILES = _build_db(encrypted=False)
_ENC_ENV, _ENC_OPTIONS, _ENC_FILES = _build_db(encrypted=True)


def _snapshot(env):
    return {
        name: env.read_file(f"/fz/{name}")
        for name in env.list_dir("/fz")
    }


def _restore(env, snapshot):
    for name in list(env.list_dir("/fz")):
        env.delete_file(f"/fz/{name}")
    for name, data in snapshot.items():
        env.write_file(f"/fz/{name}", data)


_PLAIN_SNAPSHOT = _snapshot(_PLAIN_ENV)
_ENC_SNAPSHOT = _snapshot(_ENC_ENV)


def _fuzz_once(env, options, snapshot, files, file_index, byte_fraction):
    _restore(env, snapshot)
    name, size = files[file_index % len(files)]
    position = min(int(size * byte_fraction), size - 1)
    raw = bytearray(env.read_file(f"/fz/{name}"))
    raw[position] ^= 0xFF
    env.write_file(f"/fz/{name}", bytes(raw))

    try:
        from dataclasses import replace

        db = DB("/fz", replace(options))
    except ReproError:
        return  # refusing to open corrupt state is a correct outcome
    try:
        for key, expected in _EXPECTED.items():
            try:
                value = db.get(key)
            except ReproError:
                continue  # loud failure: acceptable
            # WAL-tail truncation semantics may lose a record (None), but a
            # present value must be the right one.
            assert value in (None, expected), (
                f"silent wrong answer for {key!r} after flipping byte "
                f"{position} of {name}"
            )
    finally:
        db.close()


_FUZZ_SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_FUZZ_SETTINGS
@given(
    file_index=st.integers(min_value=0, max_value=10),
    byte_fraction=st.floats(min_value=0.0, max_value=0.999),
)
def test_single_byte_flip_never_silently_wrong_plaintext(file_index,
                                                         byte_fraction):
    _fuzz_once(
        _PLAIN_ENV, _PLAIN_OPTIONS, _PLAIN_SNAPSHOT, _PLAIN_FILES,
        file_index, byte_fraction,
    )


@_FUZZ_SETTINGS
@given(
    file_index=st.integers(min_value=0, max_value=10),
    byte_fraction=st.floats(min_value=0.0, max_value=0.999),
)
def test_single_byte_flip_never_silently_wrong_encrypted(file_index,
                                                         byte_fraction):
    _fuzz_once(
        _ENC_ENV, _ENC_OPTIONS, _ENC_SNAPSHOT, _ENC_FILES,
        file_index, byte_fraction,
    )
