"""Tests for the sharded deployment and the shared secure DEK cache."""

import pytest

from repro.dist.sharding import ShardedDB, shard_for_key
from repro.env.mem import MemEnv
from repro.keys.cache import SecureDEKCache
from repro.keys.kds import SimulatedKDS
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.write_batch import WriteBatch
from repro.shield import ShieldOptions, open_shield_db
from repro.util.clock import VirtualClock


def _plain_sharded(num_shards=4):
    env = MemEnv()

    def make_shard(index, path):
        return DB(path, Options(env=env, write_buffer_size=4 * 1024))

    return ShardedDB("/cluster", num_shards, make_shard)


def test_shard_routing_stable_and_in_range():
    for key in (b"a", b"hello", b"key-123", b"\x00\xff"):
        index = shard_for_key(key, 8)
        assert 0 <= index < 8
        assert shard_for_key(key, 8) == index  # deterministic


def test_shard_routing_spreads_keys():
    counts = [0] * 8
    for i in range(4000):
        counts[shard_for_key(b"key-%05d" % i, 8)] += 1
    assert min(counts) > 4000 / 8 * 0.5  # no pathological skew


def test_put_get_delete_across_shards():
    with _plain_sharded() as cluster:
        for i in range(500):
            cluster.put(b"key-%04d" % i, b"v-%04d" % i)
        for i in range(0, 500, 29):
            assert cluster.get(b"key-%04d" % i) == b"v-%04d" % i
        cluster.delete(b"key-0058")
        assert cluster.get(b"key-0058") is None


def test_batch_split_by_shard():
    with _plain_sharded() as cluster:
        batch = WriteBatch()
        for i in range(50):
            batch.put(b"bk-%03d" % i, b"v")
        batch.delete(b"bk-007")
        cluster.write(batch)
        assert cluster.get(b"bk-007") is None
        assert cluster.get(b"bk-008") == b"v"


def test_cross_shard_scan_merged_sorted():
    with _plain_sharded() as cluster:
        for i in range(200):
            cluster.put(b"key-%04d" % i, b"%d" % i)
        results = cluster.scan(b"key-0050", b"key-0060")
        assert [k for k, __ in results] == [b"key-%04d" % i for i in range(50, 60)]
        limited = cluster.scan(limit=7)
        assert len(limited) == 7
        keys = [k for k, __ in limited]
        assert keys == sorted(keys)


def test_invalid_shard_count():
    with pytest.raises(ValueError):
        ShardedDB("/c", 0, lambda i, p: None)


def test_stats_totals_aggregate():
    with _plain_sharded(num_shards=2) as cluster:
        for i in range(100):
            cluster.put(b"key-%04d" % i, b"v")
        totals = cluster.stats_totals()
        assert totals["db.writes"] == 100


def test_colocated_shards_share_secure_cache(tmp_path):
    """ZippyDB-style: many SHIELD instances on one server share one
    passkey-protected DEK cache, so restarts hit the KDS zero times."""
    clock = VirtualClock()
    kds = SimulatedKDS(clock=clock, request_latency_s=0.001)
    kds.authorize_server("server-1")
    env = MemEnv()
    cache = SecureDEKCache(str(tmp_path / "shared-cache"), "pw", iterations=10)

    def make_shard(index, path):
        shield = ShieldOptions(
            kds=kds, server_id="server-1", dek_cache=cache, wal_buffer_size=0
        )
        return open_shield_db(
            path, shield, Options(env=env, write_buffer_size=4 * 1024)
        )

    cluster = ShardedDB("/cluster", 3, make_shard)
    for i in range(600):
        cluster.put(b"key-%04d" % i, b"v" * 40)
    cluster.flush()
    cluster.close()
    assert len(cache) > 0

    # Restart every shard: all DEKs come from the shared local cache.
    slept_before = clock.total_slept
    cluster = ShardedDB("/cluster", 3, make_shard)
    try:
        for i in range(0, 600, 61):
            assert cluster.get(b"key-%04d" % i) == b"v" * 40
        providers = [shard.options.crypto_provider for shard in cluster.shards]
        fetches = sum(
            provider.key_client.stats.counter("keyclient.kds_fetches").value
            for provider in providers
        )
        assert fetches == 0
        hits = sum(
            provider.key_client.stats.counter("keyclient.cache_hits").value
            for provider in providers
        )
        assert hits > 0
    finally:
        cluster.close()


# -- lifecycle ---------------------------------------------------------------


def test_close_is_idempotent_and_guards_operations():
    cluster = _plain_sharded(2)
    cluster.put(b"k", b"v")
    cluster.close()
    cluster.close()  # second close is a no-op, not an error
    with pytest.raises(Exception):
        cluster.put(b"k2", b"v2")
    with pytest.raises(Exception):
        cluster.get(b"k")
    batch = WriteBatch()
    batch.put(b"k3", b"v3")
    with pytest.raises(Exception):
        cluster.write(batch)


def test_context_manager_closes_all_shards():
    with _plain_sharded(3) as cluster:
        cluster.put(b"k", b"v")
        shards = list(cluster.shards)
    for shard in shards:
        with pytest.raises(Exception):
            shard.put(b"x", b"y")  # every underlying engine is closed


def test_partial_construction_closes_built_shards():
    env = MemEnv()
    built = []

    def make_shard(index, path):
        if index == 2:
            raise RuntimeError("shard 2 refuses to open")
        db = DB(path, Options(env=env, write_buffer_size=4 * 1024))
        built.append(db)
        return db

    with pytest.raises(RuntimeError, match="shard 2"):
        ShardedDB("/partial", 4, make_shard)
    assert len(built) == 2
    for db in built:
        with pytest.raises(Exception):
            db.put(b"k", b"v")  # already-built shards were closed, not leaked


def test_close_propagates_first_shard_error_but_closes_all():
    cluster = _plain_sharded(3)

    class _ExplodingClose:
        def __init__(self, db):
            self.db = db
            self.close_calls = 0

        def close(self):
            self.close_calls += 1
            raise RuntimeError("close failed")

        def __getattr__(self, name):
            return getattr(self.db, name)

    exploding = _ExplodingClose(cluster.shards[0])
    real = cluster.shards[1:]
    cluster.shards = [exploding] + real
    with pytest.raises(RuntimeError, match="close failed"):
        cluster.close()
    assert exploding.close_calls == 1
    for shard in real:
        with pytest.raises(Exception):
            shard.put(b"x", b"y")  # closed despite the first shard's error
    exploding.db.close()
