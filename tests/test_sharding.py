"""Tests for the sharded deployment and the shared secure DEK cache."""

import os

import pytest

from repro.dist.sharding import (
    HashRing,
    ShardedDB,
    merge_scan_results,
    shard_for_key,
)
from repro.env.mem import MemEnv
from repro.keys.cache import SecureDEKCache
from repro.keys.kds import SimulatedKDS
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.write_batch import WriteBatch
from repro.shield import ShieldOptions, open_shield_db
from repro.util.clock import VirtualClock


def _plain_sharded(num_shards=4):
    env = MemEnv()

    def make_shard(index, path):
        return DB(path, Options(env=env, write_buffer_size=4 * 1024))

    return ShardedDB("/cluster", num_shards, make_shard)


def test_shard_routing_stable_and_in_range():
    for key in (b"a", b"hello", b"key-123", b"\x00\xff"):
        index = shard_for_key(key, 8)
        assert 0 <= index < 8
        assert shard_for_key(key, 8) == index  # deterministic


def test_shard_routing_spreads_keys():
    counts = [0] * 8
    for i in range(4000):
        counts[shard_for_key(b"key-%05d" % i, 8)] += 1
    assert min(counts) > 4000 / 8 * 0.5  # no pathological skew


def test_put_get_delete_across_shards():
    with _plain_sharded() as cluster:
        for i in range(500):
            cluster.put(b"key-%04d" % i, b"v-%04d" % i)
        for i in range(0, 500, 29):
            assert cluster.get(b"key-%04d" % i) == b"v-%04d" % i
        cluster.delete(b"key-0058")
        assert cluster.get(b"key-0058") is None


def test_batch_split_by_shard():
    with _plain_sharded() as cluster:
        batch = WriteBatch()
        for i in range(50):
            batch.put(b"bk-%03d" % i, b"v")
        batch.delete(b"bk-007")
        cluster.write(batch)
        assert cluster.get(b"bk-007") is None
        assert cluster.get(b"bk-008") == b"v"


def test_cross_shard_scan_merged_sorted():
    with _plain_sharded() as cluster:
        for i in range(200):
            cluster.put(b"key-%04d" % i, b"%d" % i)
        results = cluster.scan(b"key-0050", b"key-0060")
        assert [k for k, __ in results] == [b"key-%04d" % i for i in range(50, 60)]
        limited = cluster.scan(limit=7)
        assert len(limited) == 7
        keys = [k for k, __ in limited]
        assert keys == sorted(keys)


def test_invalid_shard_count():
    with pytest.raises(ValueError):
        ShardedDB("/c", 0, lambda i, p: None)


def test_stats_totals_aggregate():
    with _plain_sharded(num_shards=2) as cluster:
        for i in range(100):
            cluster.put(b"key-%04d" % i, b"v")
        totals = cluster.stats_totals()
        assert totals["db.writes"] == 100


def test_colocated_shards_share_secure_cache(tmp_path):
    """ZippyDB-style: many SHIELD instances on one server share one
    passkey-protected DEK cache, so restarts hit the KDS zero times."""
    clock = VirtualClock()
    kds = SimulatedKDS(clock=clock, request_latency_s=0.001)
    kds.authorize_server("server-1")
    env = MemEnv()
    cache = SecureDEKCache(str(tmp_path / "shared-cache"), "pw", iterations=10)

    def make_shard(index, path):
        shield = ShieldOptions(
            kds=kds, server_id="server-1", dek_cache=cache, wal_buffer_size=0
        )
        return open_shield_db(
            path, shield, Options(env=env, write_buffer_size=4 * 1024)
        )

    cluster = ShardedDB("/cluster", 3, make_shard)
    for i in range(600):
        cluster.put(b"key-%04d" % i, b"v" * 40)
    cluster.flush()
    cluster.close()
    assert len(cache) > 0

    # Restart every shard: all DEKs come from the shared local cache.
    slept_before = clock.total_slept
    cluster = ShardedDB("/cluster", 3, make_shard)
    try:
        for i in range(0, 600, 61):
            assert cluster.get(b"key-%04d" % i) == b"v" * 40
        providers = [shard.options.crypto_provider for shard in cluster.shards]
        fetches = sum(
            provider.key_client.stats.counter("keyclient.kds_fetches").value
            for provider in providers
        )
        assert fetches == 0
        hits = sum(
            provider.key_client.stats.counter("keyclient.cache_hits").value
            for provider in providers
        )
        assert hits > 0
    finally:
        cluster.close()


# -- lifecycle ---------------------------------------------------------------


def test_close_is_idempotent_and_guards_operations():
    cluster = _plain_sharded(2)
    cluster.put(b"k", b"v")
    cluster.close()
    cluster.close()  # second close is a no-op, not an error
    with pytest.raises(Exception):
        cluster.put(b"k2", b"v2")
    with pytest.raises(Exception):
        cluster.get(b"k")
    batch = WriteBatch()
    batch.put(b"k3", b"v3")
    with pytest.raises(Exception):
        cluster.write(batch)


def test_context_manager_closes_all_shards():
    with _plain_sharded(3) as cluster:
        cluster.put(b"k", b"v")
        shards = list(cluster.shards)
    for shard in shards:
        with pytest.raises(Exception):
            shard.put(b"x", b"y")  # every underlying engine is closed


def test_partial_construction_closes_built_shards():
    env = MemEnv()
    built = []

    def make_shard(index, path):
        if index == 2:
            raise RuntimeError("shard 2 refuses to open")
        db = DB(path, Options(env=env, write_buffer_size=4 * 1024))
        built.append(db)
        return db

    with pytest.raises(RuntimeError, match="shard 2"):
        ShardedDB("/partial", 4, make_shard)
    assert len(built) == 2
    for db in built:
        with pytest.raises(Exception):
            db.put(b"k", b"v")  # already-built shards were closed, not leaked


def test_close_propagates_first_shard_error_but_closes_all():
    cluster = _plain_sharded(3)

    class _ExplodingClose:
        def __init__(self, db):
            self.db = db
            self.close_calls = 0

        def close(self):
            self.close_calls += 1
            raise RuntimeError("close failed")

        def __getattr__(self, name):
            return getattr(self.db, name)

    exploding = _ExplodingClose(cluster.shards[0])
    real = cluster.shards[1:]
    cluster.shards = [exploding] + real
    with pytest.raises(RuntimeError, match="close failed"):
        cluster.close()
    assert exploding.close_calls == 1
    for shard in real:
        with pytest.raises(Exception):
            shard.put(b"x", b"y")  # closed despite the first shard's error
    exploding.db.close()


# -- cross-shard scan merge (regression) -------------------------------------


def test_cross_shard_scan_globally_ordered_with_limit():
    """Regression: the limit must apply to the *merged* stream, not per
    shard -- a per-shard cut used to return shard-0's keys first."""
    with _plain_sharded(4) as cluster:
        keys = [b"scan-%04d" % (i * 13 % 200) for i in range(200)]
        for key in keys:
            cluster.put(key, b"v:" + key)
        want = sorted(set(keys))
        got = cluster.scan(b"", None, limit=25)
        assert [k for k, _ in got] == want[:25]
        assert all(v == b"v:" + k for k, v in got)
        # No limit: the full key space, globally ordered.
        assert [k for k, _ in cluster.scan(b"", None)] == want
        # A bounded range with a limit straddling several shards.
        got = cluster.scan(b"scan-0050", b"scan-0150", limit=10)
        in_range = [k for k in want if b"scan-0050" <= k < b"scan-0150"]
        assert [k for k, _ in got] == in_range[:10]


def test_merge_scan_results_applies_limit_after_merging():
    shard_a = [(b"a", b"1"), (b"d", b"4")]
    shard_b = [(b"b", b"2"), (b"e", b"5")]
    shard_c = [(b"c", b"3")]
    merged = merge_scan_results([shard_a, shard_b, shard_c], limit=3)
    assert merged == [(b"a", b"1"), (b"b", b"2"), (b"c", b"3")]
    assert merge_scan_results([shard_a, shard_b, shard_c], limit=None) == [
        (b"a", b"1"), (b"b", b"2"), (b"c", b"3"), (b"d", b"4"), (b"e", b"5")
    ]
    assert merge_scan_results([], limit=5) == []


# -- consistent hashing ------------------------------------------------------


def test_hash_ring_routes_every_key_to_a_member():
    ring = HashRing(["a", "b", "c"])
    assert ring.nodes == {"a", "b", "c"}
    for i in range(1000):
        assert ring.node_for_key(b"key-%04d" % i) in {"a", "b", "c"}


def test_hash_ring_growth_moves_only_keys_to_the_new_node():
    ring = HashRing(["a", "b", "c"])
    keys = [b"ring-%05d" % i for i in range(3000)]
    before = {key: ring.node_for_key(key) for key in keys}
    ring.add_node("d")
    moved = 0
    for key in keys:
        after = ring.node_for_key(key)
        if after != before[key]:
            moved += 1
            assert after == "d"  # every moved key lands on the newcomer
    assert 0 < moved < len(keys) // 2  # ~1/4 expected, never a reshuffle
    ring.remove_node("d")
    assert {key: ring.node_for_key(key) for key in keys} == before


def test_hash_ring_rejects_bad_membership_changes():
    ring = HashRing(["a"])
    with pytest.raises(Exception):
        ring.add_node("a")  # duplicate
    with pytest.raises(Exception):
        ring.remove_node("ghost")
    ring.remove_node("a")
    with pytest.raises(Exception):
        ring.node_for_key(b"k")  # empty ring
    with pytest.raises(Exception):
        HashRing(replicas=0)


# -- cross-process routing determinism ---------------------------------------


def test_shard_for_key_is_pythonhashseed_independent():
    """The wire contract: client and server processes, started with
    different hash seeds, must agree on every key's shard."""
    import subprocess
    import sys

    program = (
        "from repro.dist.sharding import shard_for_key\n"
        "print(','.join(str(shard_for_key(b'key-%04d' % i, 5))"
        " for i in range(200)))\n"
    )
    outputs = []
    for seed in ("0", "1", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, env=env, timeout=60,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert result.returncode == 0, result.stderr
        outputs.append(result.stdout.strip())
    assert outputs[0] == outputs[1] == outputs[2]
    # And the in-process interpreter agrees with the subprocesses.
    local = ",".join(
        str(shard_for_key(b"key-%04d" % i, 5)) for i in range(200)
    )
    assert local == outputs[0]
