"""Tests for multi_get, checkpoint, get_property, and AlignedReadEnv."""

import pytest

from repro.crypto.cipher import generate_key
from repro.env.aligned import AlignedReadEnv
from repro.env.mem import MemEnv
from repro.errors import InvalidArgumentError
from repro.keys.kds import InMemoryKDS
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.shield import ShieldOptions, open_shield_db


def _options(env, **overrides):
    defaults = dict(env=env, write_buffer_size=8 * 1024, block_size=1024)
    defaults.update(overrides)
    return Options(**defaults)


def test_multi_get_mixed_hits():
    db = DB("/m", _options(MemEnv()))
    with db:
        for i in range(200):
            db.put(b"key-%03d" % i, b"v-%03d" % i)
        db.flush()
        keys = [b"key-005", b"key-150", b"missing", b"key-005"]
        results = db.multi_get(keys)
        assert results[b"key-005"] == b"v-005"
        assert results[b"key-150"] == b"v-150"
        assert results[b"missing"] is None
        assert len(results) == 3  # duplicates collapse


def test_multi_get_snapshot():
    from repro.lsm.options import ReadOptions

    db = DB("/m", _options(MemEnv()))
    with db:
        db.put(b"k", b"v1")
        snap = db.snapshot()
        db.put(b"k", b"v2")
        results = db.multi_get([b"k"], ReadOptions(snapshot=snap))
        assert results[b"k"] == b"v1"


def test_checkpoint_is_independent_copy():
    env = MemEnv()
    db = DB("/src", _options(env))
    for i in range(300):
        db.put(b"key-%03d" % i, b"v-%03d" % i)
    db.checkpoint("/snap")
    # Mutate the source afterwards; the checkpoint must not change.
    for i in range(300):
        db.put(b"key-%03d" % i, b"CHANGED")
    db.flush()
    db.close()

    copy = DB("/snap", _options(env))
    try:
        for i in range(0, 300, 23):
            assert copy.get(b"key-%03d" % i) == b"v-%03d" % i
    finally:
        copy.close()


def test_checkpoint_encrypted_opens_via_kds():
    env = MemEnv()
    kds = InMemoryKDS()
    db = open_shield_db("/src", ShieldOptions(kds=kds), _options(env))
    for i in range(200):
        db.put(b"key-%03d" % i, b"secret-%03d" % i)
    db.checkpoint("/snap")
    db.close()
    copy = open_shield_db("/snap", ShieldOptions(kds=kds), _options(env))
    try:
        assert copy.get(b"key-100") == b"secret-100"
    finally:
        copy.close()


def test_get_property():
    db = DB("/p", _options(MemEnv()))
    with db:
        for i in range(400):
            db.put(b"key-%03d" % (i % 200), b"v" * 40)
        db.flush()
        assert db.get_property("repro.num-live-files") >= 1
        total = sum(
            db.get_property(f"repro.num-files-at-level{level}")
            for level in range(db.options.num_levels)
        )
        assert total >= 1
        assert db.get_property("repro.total-sst-size") > 0
        assert db.get_property("repro.last-sequence") == 400
        assert db.get_property("repro.immutable-memtables") == 0
        assert db.get_property("repro.block-cache-usage") >= 0
        stats = db.get_property("repro.stats")
        assert stats["db.writes"] == 400
        with pytest.raises(InvalidArgumentError):
            db.get_property("rocksdb.estimate-num-keys")


def test_iterator_streams_sorted_pairs():
    db = DB("/it", _options(MemEnv()))
    with db:
        for i in range(200):
            db.put(b"key-%03d" % i, b"v-%03d" % i)
        db.flush()
        for i in range(200, 250):
            db.put(b"key-%03d" % i, b"v-%03d" % i)  # memtable
        db.delete(b"key-100")
        pairs = list(db.iterator(b"key-090", b"key-110"))
        keys = [k for k, __ in pairs]
        assert keys == sorted(keys)
        assert b"key-100" not in keys
        assert (b"key-099", b"v-099") in pairs
        # Lazy: taking a few items doesn't require draining.
        cursor = db.iterator()
        first = next(cursor)
        assert first[0] == b"key-000"


def test_iterator_snapshot_cutoff():
    from repro.lsm.options import ReadOptions

    db = DB("/it", _options(MemEnv()))
    with db:
        db.put(b"k", b"old")
        snap = db.snapshot()
        db.put(b"k", b"new")
        pairs = dict(db.iterator(opts=ReadOptions(snapshot=snap)))
        assert pairs[b"k"] == b"old"


def test_iterator_survives_concurrent_compaction():
    options = _options(MemEnv(), level0_file_num_compaction_trigger=2)
    db = DB("/it", options)
    with db:
        for i in range(500):
            db.put(b"key-%04d" % i, b"v" * 30)
        db.flush()
        cursor = db.iterator()
        consumed = [next(cursor) for _ in range(10)]
        db.force_compaction()  # rewrites every file under the cursor
        rest = list(cursor)
        assert len(consumed) + len(rest) == 500


def test_stats_string():
    db = DB("/st", _options(MemEnv()))
    with db:
        for i in range(300):
            db.put(b"key-%03d" % i, b"v" * 40)
        db.get(b"key-001")
        db.flush()
        dump = db.stats_string()
        assert "== DB stats" in dump
        assert "db.writes: 300" in dump
        assert "last sequence: 300" in dump
        assert "block cache" in dump
        assert "level" in dump


def test_delete_range():
    db = DB("/dr", _options(MemEnv()))
    with db:
        for i in range(100):
            db.put(b"key-%03d" % i, b"v")
        deleted = db.delete_range(b"key-020", b"key-040")
        assert deleted == 20
        assert db.get(b"key-019") == b"v"
        assert db.get(b"key-020") is None
        assert db.get(b"key-039") is None
        assert db.get(b"key-040") == b"v"
        assert db.delete_range(b"zzz", b"zzzz") == 0


def test_approximate_size():
    db = DB("/as", _options(MemEnv()))
    with db:
        assert db.approximate_size() == 0
        for i in range(500):
            db.put(b"key-%03d" % i, b"x" * 50)
        db.flush()
        total = db.approximate_size()
        assert total > 0
        partial = db.approximate_size(b"key-100", b"key-200")
        assert 0 < partial <= total
        assert db.approximate_size(b"zzz", b"zzzz") == 0


def test_aligned_env_expands_reads():
    inner = MemEnv()
    env = AlignedReadEnv(inner, alignment=512)
    env.write_file("/f", bytes(range(256)) * 8)  # 2048 bytes
    with env.new_random_access_file("/f") as handle:
        assert handle.read(100, 50) == (bytes(range(256)) * 8)[100:150]
        assert handle.read(0, 0) == b""
    assert env.stats.counter("alignedio.requested_bytes").value == 50
    assert env.stats.counter("alignedio.physical_bytes").value == 512
    assert env.read_amplification() > 1.0


def test_aligned_env_rejects_bad_alignment():
    with pytest.raises(InvalidArgumentError):
        AlignedReadEnv(MemEnv(), alignment=3000)


def test_db_on_aligned_env():
    env = AlignedReadEnv(MemEnv(), alignment=512)
    db = DB("/a", _options(env))
    with db:
        for i in range(300):
            db.put(b"key-%03d" % i, b"v-%03d" % i)
        db.flush()
        for i in range(0, 300, 17):
            assert db.get(b"key-%03d" % i) == b"v-%03d" % i
    assert env.read_amplification() >= 1.0


def test_encfs_preserves_alignment():
    """EncryptedEnv is length-preserving, so it composes with a direct-I/O
    device model (the paper's Section 4.1 block-alignment requirement)."""
    from repro.encfs.env import EncryptedEnv

    device = AlignedReadEnv(MemEnv(), alignment=512)
    env = EncryptedEnv(device, generate_key("shake-ctr"))
    db = DB("/a", _options(env))
    with db:
        for i in range(300):
            db.put(b"key-%03d" % i, b"v-%03d" % i)
        db.flush()
        for i in range(0, 300, 31):
            assert db.get(b"key-%03d" % i) == b"v-%03d" % i
    # The device saw (amplified) aligned requests while everything
    # decrypted correctly -- length-preserving encryption kept offsets 1:1.
    assert device.read_amplification() >= 1.0
    assert device.stats.counter("alignedio.physical_bytes").value > 0
