"""Tests for the SHAKE-256 keystream cipher."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto.xof import SEGMENT_SIZE, ShakeCtrCipher
from repro.errors import EncryptionError


def test_keystream_matches_definition():
    key, nonce = bytes(32), bytes(16)
    cipher = ShakeCtrCipher(key, nonce)
    expected = hashlib.shake_256(key + nonce + (0).to_bytes(8, "big")).digest(64)
    assert cipher.keystream(0, 64) == expected


def test_segment_boundary_continuity():
    cipher = ShakeCtrCipher(bytes(32), bytes(16))
    around = cipher.keystream(SEGMENT_SIZE - 10, 20)
    left = cipher.keystream(SEGMENT_SIZE - 10, 10)
    right = cipher.keystream(SEGMENT_SIZE, 10)
    assert around == left + right


def test_random_access_consistency():
    cipher = ShakeCtrCipher(bytes(32), bytes(16))
    full = cipher.keystream(0, 3 * SEGMENT_SIZE)
    assert cipher.keystream(5000, 2000) == full[5000:7000]


def test_key_and_nonce_separation():
    data = b"x" * 64
    base = ShakeCtrCipher(bytes(32), bytes(16)).xor_at(data, 0)
    other_key = ShakeCtrCipher(b"\x01" + bytes(31), bytes(16)).xor_at(data, 0)
    other_nonce = ShakeCtrCipher(bytes(32), b"\x01" + bytes(15)).xor_at(data, 0)
    assert base != other_key
    assert base != other_nonce


def test_bad_sizes():
    with pytest.raises(EncryptionError):
        ShakeCtrCipher(bytes(16), bytes(16))
    with pytest.raises(EncryptionError):
        ShakeCtrCipher(bytes(32), bytes(12))


def test_empty():
    cipher = ShakeCtrCipher(bytes(32), bytes(16))
    assert cipher.keystream(0, 0) == b""
    assert cipher.xor_at(b"", 123) == b""


@given(
    st.binary(max_size=2 * SEGMENT_SIZE),
    st.integers(min_value=0, max_value=3 * SEGMENT_SIZE),
)
def test_involution(data, offset):
    cipher = ShakeCtrCipher(bytes(32), bytes(16))
    assert cipher.xor_at(cipher.xor_at(data, offset), offset) == data
