"""Tests for SST block compression (compress-then-encrypt)."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.cipher import generate_key
from repro.env.mem import MemEnv
from repro.errors import CorruptionError, InvalidArgumentError
from repro.lsm.block import (
    BLOCK_RAW,
    BLOCK_ZLIB,
    unwrap_block,
    wrap_block,
)
from repro.lsm.db import DB
from repro.lsm.filecrypto import SingleKeyCryptoProvider
from repro.lsm.options import Options


def test_wrap_raw_when_incompressible():
    import os

    noise = os.urandom(500)
    stored = wrap_block(noise, "zlib")
    assert stored[0] == BLOCK_RAW
    assert unwrap_block(stored) == noise


def test_wrap_compresses_compressible():
    data = b"abcabcabc" * 200
    stored = wrap_block(data, "zlib")
    assert stored[0] == BLOCK_ZLIB
    assert len(stored) < len(data)
    assert unwrap_block(stored) == data


def test_wrap_none_always_raw():
    stored = wrap_block(b"abcabcabc" * 200, "none")
    assert stored[0] == BLOCK_RAW


def test_unwrap_rejects_garbage():
    with pytest.raises(CorruptionError):
        unwrap_block(b"")
    with pytest.raises(CorruptionError):
        unwrap_block(bytes([99]) + b"data")
    with pytest.raises(CorruptionError):
        unwrap_block(bytes([BLOCK_ZLIB]) + b"not-zlib-data")


@given(st.binary(max_size=5000), st.sampled_from(["none", "zlib"]))
def test_wrap_unwrap_roundtrip(data, compression):
    if not data:
        return
    assert unwrap_block(wrap_block(data, compression)) == data


def test_invalid_compression_option_rejected():
    with pytest.raises(InvalidArgumentError):
        Options(compression="lz77").validate()


def _sized_db(env, compression):
    return DB(
        "/cmp",
        Options(
            env=env,
            compression=compression,
            write_buffer_size=16 * 1024,
            block_size=2048,
        ),
    )


def test_compressed_db_roundtrip():
    env = MemEnv()
    db = _sized_db(env, "zlib")
    try:
        for i in range(800):
            db.put(b"key-%05d" % i, b"repetitive-payload " * 5)
        db.flush()
        for i in range(0, 800, 37):
            assert db.get(b"key-%05d" % i) == b"repetitive-payload " * 5
        assert dict(db.scan(limit=5))
    finally:
        db.close()


def test_compression_shrinks_files():
    def total_sst_bytes(compression):
        env = MemEnv()
        db = _sized_db(env, compression)
        try:
            for i in range(800):
                db.put(b"key-%05d" % i, b"repetitive-payload " * 5)
            db.compact_range()
            return sum(
                env.file_size(f"/cmp/{n}")
                for n in env.list_dir("/cmp")
                if n.endswith(".sst")
            )
        finally:
            db.close()

    assert total_sst_bytes("zlib") < total_sst_bytes("none") * 0.6


def test_compression_composes_with_encryption():
    env = MemEnv()
    provider = SingleKeyCryptoProvider("shake-ctr", generate_key("shake-ctr"))
    db = DB(
        "/cmp",
        Options(
            env=env,
            compression="zlib",
            crypto_provider=provider,
            write_buffer_size=16 * 1024,
        ),
    )
    try:
        for i in range(500):
            db.put(b"key-%05d" % i, b"compress-me " * 8)
        db.flush()
        for name in env.list_dir("/cmp"):
            raw = env.read_file(f"/cmp/{name}")
            assert b"compress-me" not in raw
        assert db.get(b"key-00042") == b"compress-me " * 8
    finally:
        db.close()


def test_mixed_compression_files_coexist():
    """A database can change its compression setting across restarts; old
    files keep their original framing."""
    env = MemEnv()
    db = _sized_db(env, "none")
    db.put(b"old", b"written-raw " * 10)
    db.flush()
    db.close()
    db = _sized_db(env, "zlib")
    try:
        db.put(b"new", b"written-compressed " * 10)
        db.flush()
        assert db.get(b"old") == b"written-raw " * 10
        assert db.get(b"new") == b"written-compressed " * 10
    finally:
        db.close()
