"""Tests for the group-commit (pipelined writer) path."""

import threading

import pytest

from repro.env.faulty import FaultInjectionEnv
from repro.env.mem import MemEnv
from repro.errors import IOError_
from repro.keys.kds import InMemoryKDS
from repro.lsm.db import DB
from repro.lsm.options import Options, WriteOptions
from repro.shield import ShieldOptions, open_shield_db


def _options(env, **overrides):
    defaults = dict(env=env, write_buffer_size=64 * 1024, block_size=1024)
    defaults.update(overrides)
    return Options(**defaults)


def _hammer(db, num_threads=6, per_thread=300, value=b"v"):
    errors = []

    def writer(thread_id):
        try:
            for i in range(per_thread):
                db.put(b"t%02d-%04d" % (thread_id, i), value)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(t,)) for t in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


def test_groups_form_under_contention():
    # A small WAL-append latency makes the leader hold the commit long
    # enough for followers to pile up, so grouping is deterministic
    # rather than at the mercy of scheduler timing on a loaded machine.
    from repro.env.latency import LatencyEnv, LatencyModel

    env = LatencyEnv(MemEnv(), LatencyModel(write_op_s=0.0005))
    db = DB("/g", _options(env))
    with db:
        errors = _hammer(db)
        assert not errors
        groups = db.stats.counter("db.write_groups").value
        writes = db.stats.counter("db.writes").value
        assert writes == 6 * 300
        # Group commit batches: strictly fewer leader passes than writes.
        assert 0 < groups < writes
        # Everything readable.
        for t in range(6):
            assert db.get(b"t%02d-0000" % t) == b"v"


def test_single_writer_group_size_one():
    db = DB("/g", _options(MemEnv()))
    with db:
        for i in range(50):
            db.put(b"k-%02d" % i, b"v")
        assert db.stats.counter("db.write_groups").value == 50


def test_group_commit_reduces_encryptions_under_contention():
    """The encryption-relevant payoff: N contended writers share WAL
    appends, so per-record cipher inits drop even without the WAL buffer."""
    from repro.crypto.cipher import CRYPTO_STATS

    env = MemEnv()
    db = open_shield_db(
        "/g",
        ShieldOptions(kds=InMemoryKDS(), wal_buffer_size=0),
        _options(env),
    )
    with db:
        before = CRYPTO_STATS.counter("crypto.context_inits").value
        errors = _hammer(db, num_threads=6, per_thread=200)
        inits = CRYPTO_STATS.counter("crypto.context_inits").value - before
        assert not errors
        writes = 6 * 200
        groups = db.stats.counter("db.write_groups").value
        # WAL encryptions track groups (plus background files), not writes.
        if groups < writes / 2:
            assert inits < writes


def test_group_sync_covers_all_members():
    env = MemEnv()
    db = DB("/g", _options(env))
    barrier = threading.Barrier(4)
    errors = []

    def writer(thread_id, sync):
        try:
            barrier.wait()
            db.put(
                b"s-%d" % thread_id, b"v", WriteOptions(sync=sync)
            )
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(t, t == 0)) for t in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # One member's sync made the whole group durable.
    env.crash_system()
    recovered = DB("/g", _options(env))
    try:
        survivors = sum(
            1 for t in range(4) if recovered.get(b"s-%d" % t) is not None
        )
        # At minimum, everything committed in or before the syncing
        # member's group survived; requester 0 is always durable.
        assert recovered.get(b"s-0") == b"v" or survivors == 4
    finally:
        recovered.close()


def test_error_propagates_to_every_group_member():
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    db = DB("/g", _options(env))
    env.fail_paths(lambda path: path.endswith(".log"))
    errors = _hammer(db, num_threads=4, per_thread=50)
    # Every writer thread observed the failure (no silent acks).
    assert errors
    assert all(isinstance(exc, IOError_) for exc in errors)
    env.heal()
    db.simulate_crash()


def test_batches_remain_atomic_in_groups():
    from repro.lsm.write_batch import WriteBatch

    db = DB("/g", _options(MemEnv()))
    with db:
        errors = []

        def writer(thread_id):
            try:
                for i in range(100):
                    batch = WriteBatch()
                    batch.put(b"a-%02d-%03d" % (thread_id, i), b"1")
                    batch.put(b"b-%02d-%03d" % (thread_id, i), b"2")
                    db.write(batch)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for t in range(4):
            for i in range(0, 100, 13):
                assert db.get(b"a-%02d-%03d" % (t, i)) == b"1"
                assert db.get(b"b-%02d-%03d" % (t, i)) == b"2"
