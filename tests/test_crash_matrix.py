"""Crash-point matrix: kill at every declared sync point, verify recovery.

Each case snapshots the durable env and the KDS at the instant the point
fires, aborts the operation there, and recovers from the snapshot.  The
invariants (no acked write lost, no delete resurrected, clean DEK audit,
bounded DEK leakage) are checked inside ``_crash_point_trial``; the test
asserts the verdict and a few load-bearing fields.
"""

import pytest

from repro.tools.chaos import MAX_LEAKED_DEKS, _crash_point_trial, run_crash_matrix
from repro.util.syncpoint import SYNC

# chaos imports the engine, so every instrumented layer has declared by now.
ALL_POINTS = SYNC.declared()


def test_matrix_covers_every_declared_point():
    """A new sync point in the engine must automatically join the matrix."""
    assert len(ALL_POINTS) >= 11
    kinds = {name.split(":")[0] for name in ALL_POINTS}
    assert {"flush", "compaction", "manifest", "wal", "dek"} <= kinds


@pytest.mark.parametrize("point", ALL_POINTS)
def test_crash_at_point_recovers_cleanly(point):
    result = _crash_point_trial(point, seed=0)
    assert result["captured"], f"{point}: {result['error']}"
    assert result["recovery_error"] is None
    assert result["lost"] == []
    assert result["resurrected"] == []
    assert result["unreadable_files"] == []
    assert result["plaintext_data_files"] == []
    assert result["duplicate_key_nonce_pairs"] == 0
    assert result["shared_deks"] == 0
    assert result["unknown_deks"] == []
    assert result["leaked_deks"] <= MAX_LEAKED_DEKS
    assert result["ok"], result


def test_dek_before_retire_is_the_leak_window():
    """Killing between file deletion and DEK retirement is the one place
    a DEK may outlive its file -- the window dek_audit exists to catch."""
    result = _crash_point_trial("dek:before_retire", seed=0)
    assert result["ok"]
    assert result["leaked_deks"] >= 1


def test_run_crash_matrix_aggregates():
    report = run_crash_matrix(seed=0, points=["flush:after_sst_write"])
    assert report["ok"]
    assert set(report["points"]) == {"flush:after_sst_write"}
