"""Tests for KDS outage resilience: retries, breaker, grace mode, FaultyKDS."""

import random

import pytest

from repro.errors import (
    AuthorizationError,
    CircuitOpenError,
    KDSUnavailableError,
    NotFoundError,
)
from repro.keys.client import KeyClient
from repro.keys.faulty import FaultyKDS
from repro.keys.kds import InMemoryKDS
from repro.keys.cache import SecureDEKCache
from repro.keys.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    is_retriable,
)
from repro.util.clock import VirtualClock


# -- RetryPolicy -------------------------------------------------------------


def test_retry_recovers_from_transient_failures():
    clock = VirtualClock()
    policy = RetryPolicy(max_attempts=4, clock=clock, rng=random.Random(1))
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise KDSUnavailableError("blip")
        return "ok"

    assert policy.call(flaky) == "ok"
    assert len(calls) == 3


def test_retry_gives_up_after_max_attempts():
    clock = VirtualClock()
    policy = RetryPolicy(max_attempts=3, clock=clock, rng=random.Random(1))
    calls = []

    def always_down():
        calls.append(1)
        raise KDSUnavailableError("down")

    with pytest.raises(KDSUnavailableError):
        policy.call(always_down)
    assert len(calls) == 3


def test_retry_never_retries_policy_denials():
    calls = []

    def denied():
        calls.append(1)
        raise AuthorizationError("revoked")

    policy = RetryPolicy(max_attempts=5, clock=VirtualClock())
    with pytest.raises(AuthorizationError):
        policy.call(denied)
    assert len(calls) == 1


def test_retry_deadline_bounds_total_wall_time():
    clock = VirtualClock()
    # base 10s: the first backoff alone overshoots a 1s deadline.
    policy = RetryPolicy(
        max_attempts=10, base_s=10.0, cap_s=10.0, deadline_s=1.0,
        clock=clock, rng=_AlwaysMaxRandom(),
    )
    calls = []

    def always_down():
        calls.append(1)
        raise KDSUnavailableError("down")

    with pytest.raises(KDSUnavailableError):
        policy.call(always_down)
    assert len(calls) == 1  # no retry was attempted past the deadline
    assert clock.now() == 0.0  # and it never slept


class _AlwaysMaxRandom(random.Random):
    def uniform(self, a, b):
        return b


def test_backoff_is_full_jitter_under_the_cap():
    policy = RetryPolicy(base_s=0.01, cap_s=0.25, rng=random.Random(7))
    for attempt in range(10):
        ceiling = min(0.25, 0.01 * (2 ** attempt))
        for _ in range(20):
            delay = policy.backoff_s(attempt)
            assert 0.0 <= delay <= ceiling


def test_is_retriable_classification():
    assert is_retriable(KDSUnavailableError("x"))
    assert is_retriable(OSError("x"))
    assert not is_retriable(AuthorizationError("x"))
    assert not is_retriable(NotFoundError("x"))
    # An open circuit already encodes "stop asking": retrying it is noise.
    assert not is_retriable(CircuitOpenError("x"))


# -- CircuitBreaker ----------------------------------------------------------


def test_breaker_trips_after_threshold_and_fails_fast():
    clock = VirtualClock()
    breaker = CircuitBreaker(failure_threshold=3, reset_after_s=5.0, clock=clock)
    assert breaker.state == CLOSED
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == CLOSED
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 1
    assert not breaker.available()
    with pytest.raises(CircuitOpenError):
        breaker.guard()
    assert breaker.fast_failures >= 1


def test_breaker_half_open_probe_closes_on_success():
    clock = VirtualClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_after_s=5.0, clock=clock)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.sleep(5.0)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()  # the probe goes through
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.available()


def test_breaker_half_open_probe_failure_reopens():
    clock = VirtualClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_after_s=5.0, clock=clock)
    breaker.record_failure()
    clock.sleep(5.0)
    assert breaker.state == HALF_OPEN
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 2
    # The clock has not advanced again: still fully open.
    with pytest.raises(CircuitOpenError):
        breaker.guard()


def test_breaker_success_resets_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3, clock=VirtualClock())
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED


# -- FaultyKDS ---------------------------------------------------------------


def test_faulty_kds_outage_and_heal():
    kds = FaultyKDS(InMemoryKDS(), seed=0)
    dek = kds.provision("s1")
    kds.go_down()
    with pytest.raises(KDSUnavailableError):
        kds.fetch("s1", dek.dek_id)
    with pytest.raises(KDSUnavailableError):
        kds.provision("s1")
    with pytest.raises(KDSUnavailableError):
        kds.retire(dek.dek_id)
    assert kds.injected_failures == 3
    kds.come_up()
    assert kds.fetch("s1", dek.dek_id).key == dek.key


def test_faulty_kds_flap_schedule_is_deterministic():
    kds = FaultyKDS(InMemoryKDS(), seed=0)
    kds.set_flap_schedule(2, 1)  # 2 served, 1 failed, repeating
    outcomes = []
    for _ in range(9):
        try:
            kds.provision("s1")
            outcomes.append("ok")
        except KDSUnavailableError:
            outcomes.append("down")
    assert outcomes == ["ok", "ok", "down"] * 3


def test_faulty_kds_error_rate_replays_with_the_seed():
    def run(seed):
        kds = FaultyKDS(InMemoryKDS(), seed=seed)
        kds.set_error_rate(0.5)
        outcomes = []
        for _ in range(32):
            try:
                kds.provision("s1")
                outcomes.append(1)
            except KDSUnavailableError:
                outcomes.append(0)
        return outcomes

    assert run(7) == run(7)
    assert 0 < sum(run(7)) < 32


def test_faulty_kds_delegates_inspection_to_inner():
    inner = InMemoryKDS()
    kds = FaultyKDS(inner, seed=0)
    dek = kds.provision("s1")
    assert kds.knows(dek.dek_id)
    assert kds.live_dek_count() == 1
    assert kds.fork().knows(dek.dek_id)


# -- KeyClient resilience ----------------------------------------------------


def _resilient_client(kds, cache=None):
    return KeyClient(
        kds,
        "s1",
        cache=cache,
        retry_policy=RetryPolicy(
            max_attempts=3, base_s=0.0, cap_s=0.0, deadline_s=1.0,
            clock=VirtualClock(),
        ),
        breaker=CircuitBreaker(failure_threshold=3, reset_after_s=30.0,
                               clock=VirtualClock()),
    )


def test_resilient_constructor_wires_policy_and_breaker():
    client = KeyClient.resilient(InMemoryKDS(), "s1")
    assert client.retry_policy is not None
    assert client.breaker is not None
    assert client.available()


def test_retries_absorb_a_transient_blip():
    kds = FaultyKDS(InMemoryKDS(), seed=3)
    client = _resilient_client(kds)
    kds.set_flap_schedule(1, 1)  # every other request fails
    for _ in range(4):
        client.new_dek()  # each succeeds via one retry
    assert client.breaker.state == CLOSED
    assert client.stats.counter("keyclient.kds_errors").value > 0


def test_breaker_opens_during_outage_and_fails_fast():
    kds = FaultyKDS(InMemoryKDS(), seed=0)
    client = _resilient_client(kds)
    kds.go_down()
    with pytest.raises(KDSUnavailableError):
        client.new_dek()  # 3 attempts -> 3 failures -> breaker opens
    assert client.breaker.state == OPEN
    assert not client.available()
    requests_before = kds.requests
    with pytest.raises(KDSUnavailableError):
        client.new_dek()  # fails fast: the KDS is not even contacted
    assert kds.requests == requests_before
    assert client.stats.gauge("keyclient.breaker_state").value == 1


def test_grace_mode_serves_cached_deks_during_outage(tmp_path):
    cache = SecureDEKCache(str(tmp_path / "cache.db"), "pw", iterations=10)
    kds = FaultyKDS(InMemoryKDS(), seed=0)
    client = _resilient_client(kds, cache=cache)
    dek = client.new_dek()

    kds.go_down()
    with pytest.raises(KDSUnavailableError):
        client.new_dek()  # trips the breaker
    assert not client.available()
    # The cached DEK keeps serving: reads of existing files never notice.
    assert client.get_dek(dek.dek_id).key == dek.key
    assert client.stats.counter("keyclient.grace_hits").value >= 1
    # A cold DEK-ID is a miss and fails fast.
    with pytest.raises(KDSUnavailableError):
        client.get_dek("dek-cold")


def test_retires_defer_during_outage_and_drain_after(tmp_path):
    kds = FaultyKDS(InMemoryKDS(), seed=0)
    client = _resilient_client(kds)
    deks = [client.new_dek() for _ in range(3)]

    kds.go_down()
    for dek in deks:
        client.retire_dek(dek.dek_id)  # transient failure -> deferred
    assert sorted(client.pending_retires) == sorted(d.dek_id for d in deks)
    assert all(kds.knows(d.dek_id) for d in deks)  # still live: leaked for now

    kds.come_up()
    assert client.drain_pending_retires() == 3
    assert client.pending_retires == []
    assert not any(kds.knows(d.dek_id) for d in deks)
    assert client.stats.counter("keyclient.retires_drained").value == 3


def test_successful_request_auto_drains_deferred_retires():
    kds = FaultyKDS(InMemoryKDS(), seed=0)
    client = _resilient_client(kds)
    dek = client.new_dek()
    kds.go_down()
    client.retire_dek(dek.dek_id)
    assert client.pending_retires == [dek.dek_id]
    kds.come_up()
    # Breaker is open; wait it out via its (virtual) clock.
    client.breaker._clock.sleep(30.0)
    client.new_dek()  # the next successful round-trip drains the queue
    assert client.pending_retires == []
    assert not kds.knows(dek.dek_id)


def test_retire_of_unknown_dek_is_not_an_error():
    client = _resilient_client(FaultyKDS(InMemoryKDS(), seed=0))
    client.retire_dek("dek-never-existed")  # InMemoryKDS pops silently
    assert client.pending_retires == []
