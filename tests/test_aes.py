"""AES correctness pinned to FIPS-197 Appendix C test vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import AES, _SBOX, _INV_SBOX
from repro.errors import EncryptionError

_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


def test_sbox_known_entries():
    # Spot values straight from FIPS-197 Figure 7.
    assert _SBOX[0x00] == 0x63
    assert _SBOX[0x01] == 0x7C
    assert _SBOX[0x53] == 0xED
    assert _SBOX[0xFF] == 0x16


def test_inv_sbox_inverts():
    for value in range(256):
        assert _INV_SBOX[_SBOX[value]] == value


def test_fips197_aes128():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    assert AES(key).encrypt_block(_PLAINTEXT) == expected


def test_fips197_aes192():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
    expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
    assert AES(key).encrypt_block(_PLAINTEXT) == expected


def test_fips197_aes256():
    key = bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
    )
    expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
    assert AES(key).encrypt_block(_PLAINTEXT) == expected


def test_fips197_appendix_b_vector():
    # The worked example of FIPS-197 Appendix B.
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
    assert AES(key).encrypt_block(plaintext) == expected


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_decrypt_inverts_encrypt(key_len):
    key = bytes(range(key_len))
    aes = AES(key)
    block = bytes(range(16))
    assert aes.decrypt_block(aes.encrypt_block(block)) == block


def test_bad_key_size_rejected():
    with pytest.raises(EncryptionError):
        AES(b"short")


def test_bad_block_size_rejected():
    aes = AES(bytes(16))
    with pytest.raises(EncryptionError):
        aes.encrypt_block(b"tiny")
    with pytest.raises(EncryptionError):
        aes.decrypt_block(b"x" * 17)


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
def test_encrypt_decrypt_roundtrip_property(key, block):
    aes = AES(key)
    assert aes.decrypt_block(aes.encrypt_block(block)) == block


@given(st.binary(min_size=16, max_size=16))
def test_different_keys_differ(block):
    c1 = AES(bytes(16)).encrypt_block(block)
    c2 = AES(bytes([1]) + bytes(15)).encrypt_block(block)
    assert c1 != c2
