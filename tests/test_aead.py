"""AEAD primitive tests: published vectors, nonce derivation, registry.

The pure-Python AEAD constructions are checked against the official
vectors (RFC 8439 for ChaCha20-Poly1305, the GCM spec's canonical
256-bit-key test cases for AES-GCM) so a transcription slip in the
field arithmetic cannot masquerade as "roundtrips fine".
"""

import pytest

from repro.crypto.aead import (
    TAG_SIZE,
    AesGcm,
    ChaCha20Poly1305,
    ShakeEtm,
    derive_nonce,
)
from repro.crypto.cipher import (
    CRYPTO_STATS,
    available_schemes,
    create_aead,
    create_cipher,
    generate_key,
    generate_nonce,
    spec_for,
)
from repro.errors import AuthenticationError, EncryptionError

AEAD_SCHEMES = [s for s in available_schemes() if spec_for(s).aead]


# --------------------------------------------------------------------------
# Published vectors
# --------------------------------------------------------------------------


def test_rfc8439_chacha20_poly1305_vector():
    """RFC 8439 section 2.8.2 -- the full AEAD construction."""
    key = bytes(range(0x80, 0xA0))
    nonce = bytes.fromhex("070000004041424344454647")
    aad = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
    plaintext = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it."
    )
    ciphertext = bytes.fromhex(
        "d31a8d34648e60db7b86afbc53ef7ec2"
        "a4aded51296e08fea9e2b5a736ee62d6"
        "3dbea45e8ca9671282fafb69da92728b"
        "1a71de0a9e060b2905d6a5b67ecd3b36"
        "92ddbd7f2d778b8c9803aee328091b58"
        "fab324e4fad675945585808b4831d7bc"
        "3ff4def08e4b7a9de576d26586cec64b"
        "6116"
    )
    tag = bytes.fromhex("1ae10b594f09e26a7e902ecbd0600691")

    sealed = ChaCha20Poly1305(key, nonce).seal(plaintext, aad)
    assert sealed == ciphertext + tag
    assert ChaCha20Poly1305(key, nonce).open(sealed, aad) == plaintext


def test_gcm_spec_aes256_empty_vector():
    """GCM spec test case 13: 256-bit zero key, empty plaintext and AAD."""
    sealed = AesGcm(bytes(32), bytes(12)).seal(b"")
    assert sealed == bytes.fromhex("530f8afbc74536b9a963b4f1c4cb738b")


def test_gcm_spec_aes256_one_block_vector():
    """GCM spec test case 14: 256-bit zero key, one zero block."""
    sealed = AesGcm(bytes(32), bytes(12)).seal(bytes(16))
    assert sealed == bytes.fromhex(
        "cea7403d4d606b6e074ec5d3baf39d18d0d1c8a799996bf0265b98b5d48ab919"
    )
    assert AesGcm(bytes(32), bytes(12)).open(sealed) == bytes(16)


def test_shake_etm_deterministic_and_keyed():
    """No published vectors exist for the SHAKE construction; pin the
    properties instead: deterministic under one (key, nonce), different
    under another."""
    key, nonce = bytes(32), bytes(16)
    first = ShakeEtm(key, nonce).seal(b"payload")
    second = ShakeEtm(key, nonce).seal(b"payload")
    other_key = ShakeEtm(b"\x01" * 32, nonce).seal(b"payload")
    assert first == second
    assert first != other_key
    assert ShakeEtm(key, nonce).open(first) == b"payload"


# --------------------------------------------------------------------------
# Nonce derivation
# --------------------------------------------------------------------------


def test_derive_nonce_distinct_per_offset():
    base = bytes(range(12))
    seen = {derive_nonce(base, offset) for offset in (0, 1, 16, 4096, 2**32)}
    assert len(seen) == 5
    for nonce in seen:
        assert len(nonce) == len(base)
        assert nonce[:4] == base[:4]  # only the low 8 bytes fold the offset


def test_derive_nonce_zero_offset_is_identity():
    base = bytes(range(16))
    assert derive_nonce(base, 0) == base


def test_derive_nonce_rejects_bad_inputs():
    with pytest.raises(EncryptionError):
        derive_nonce(bytes(4), 0)  # too short to fold 8 offset bytes
    with pytest.raises(EncryptionError):
        derive_nonce(bytes(12), -1)


# --------------------------------------------------------------------------
# Registry-level AEAD contexts
# --------------------------------------------------------------------------


@pytest.mark.parametrize("scheme", AEAD_SCHEMES)
def test_registry_roundtrip(scheme):
    key, nonce = generate_key(scheme), generate_nonce(scheme)
    data = b"the quick brown fox" * 7
    sealed = create_aead(scheme, key, nonce).seal(data, b"role")
    assert len(sealed) == len(data) + TAG_SIZE
    assert data not in sealed
    assert create_aead(scheme, key, nonce).open(sealed, b"role") == data


@pytest.mark.parametrize("scheme", AEAD_SCHEMES)
def test_every_bit_flip_is_detected(scheme):
    key, nonce = generate_key(scheme), generate_nonce(scheme)
    sealed = bytearray(create_aead(scheme, key, nonce).seal(b"twelve bytes"))
    for position in range(len(sealed)):
        sealed[position] ^= 0x01
        with pytest.raises(AuthenticationError):
            create_aead(scheme, key, nonce).open(bytes(sealed))
        sealed[position] ^= 0x01


@pytest.mark.parametrize("scheme", AEAD_SCHEMES)
def test_aad_binding(scheme):
    key, nonce = generate_key(scheme), generate_nonce(scheme)
    sealed = create_aead(scheme, key, nonce).seal(b"data", b"sst-footer")
    with pytest.raises(AuthenticationError):
        create_aead(scheme, key, nonce).open(sealed, b"sst-index")
    with pytest.raises(AuthenticationError):
        create_aead(scheme, key, nonce).open(sealed, b"")


@pytest.mark.parametrize("scheme", AEAD_SCHEMES)
def test_truncated_sealed_unit_rejected(scheme):
    key, nonce = generate_key(scheme), generate_nonce(scheme)
    sealed = create_aead(scheme, key, nonce).seal(b"data")
    for cut in (len(sealed) - 1, TAG_SIZE - 1, 1, 0):
        with pytest.raises(AuthenticationError):
            create_aead(scheme, key, nonce).open(sealed[:cut])


def test_interface_mismatch_rejected():
    """Stream schemes have no seal; AEAD schemes have no seekable XOR."""
    with pytest.raises(EncryptionError):
        create_aead("shake-ctr", generate_key("shake-ctr"), generate_nonce("shake-ctr"))
    with pytest.raises(EncryptionError):
        create_cipher("shake-etm", generate_key("shake-etm"), generate_nonce("shake-etm"))


def test_auth_verdict_accounting():
    scheme = "shake-etm"
    key, nonce = generate_key(scheme), generate_nonce(scheme)
    sealed = create_aead(scheme, key, nonce).seal(b"counted")
    ok_before = CRYPTO_STATS.counter("crypto.auth_ok").value
    fail_before = CRYPTO_STATS.counter("crypto.auth_fail").value
    create_aead(scheme, key, nonce).open(sealed)
    with pytest.raises(AuthenticationError):
        create_aead(scheme, key, nonce).open(sealed, b"wrong-aad")
    assert CRYPTO_STATS.counter("crypto.auth_ok").value == ok_before + 1
    assert CRYPTO_STATS.counter("crypto.auth_fail").value == fail_before + 1
