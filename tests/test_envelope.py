"""Tests for the plaintext file envelope."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CorruptionError
from repro.lsm.envelope import (
    Envelope,
    FILE_KIND_MANIFEST,
    FILE_KIND_SST,
    FILE_KIND_WAL,
    MAX_ENVELOPE_SIZE,
    decode_envelope,
    kind_name,
)


def test_roundtrip_plaintext():
    envelope = Envelope(file_kind=FILE_KIND_WAL, scheme_id=0, dek_id="", nonce=b"")
    decoded = decode_envelope(envelope.encode())
    assert decoded.file_kind == FILE_KIND_WAL
    assert not decoded.encrypted
    assert decoded.dek_id == ""
    assert decoded.header_size == len(envelope.encode())


def test_roundtrip_encrypted():
    envelope = Envelope(
        file_kind=FILE_KIND_SST,
        scheme_id=4,
        dek_id="dek-abcdef0123456789",
        nonce=b"n" * 16,
    )
    decoded = decode_envelope(envelope.encode() + b"payload-bytes-after")
    assert decoded.encrypted
    assert decoded.dek_id == "dek-abcdef0123456789"
    assert decoded.nonce == b"n" * 16
    assert decoded.scheme_id == 4


def test_header_size_points_at_payload():
    envelope = Envelope(FILE_KIND_SST, 4, "dek-x", b"n" * 16)
    blob = envelope.encode() + b"PAYLOAD"
    decoded = decode_envelope(blob)
    assert blob[decoded.header_size:] == b"PAYLOAD"


def test_bad_magic_rejected():
    with pytest.raises(CorruptionError):
        decode_envelope(b"NOPE" + bytes(20))


def test_truncated_rejected():
    envelope = Envelope(FILE_KIND_SST, 4, "dek-x", b"n" * 16).encode()
    with pytest.raises(CorruptionError):
        decode_envelope(envelope[:10])


def test_corrupted_crc_rejected():
    blob = bytearray(Envelope(FILE_KIND_SST, 4, "dek-x", b"n" * 16).encode())
    blob[8] ^= 0xFF
    with pytest.raises(CorruptionError):
        decode_envelope(bytes(blob))


def test_unsupported_version_rejected():
    blob = bytearray(Envelope(FILE_KIND_SST, 0, "", b"").encode())
    blob[4] = 99
    with pytest.raises(CorruptionError):
        decode_envelope(bytes(blob))


def test_kind_names():
    assert kind_name(FILE_KIND_WAL) == "wal"
    assert kind_name(FILE_KIND_SST) == "sst"
    assert kind_name(FILE_KIND_MANIFEST) == "manifest"
    assert kind_name(42) == "unknown"


@given(
    kind=st.sampled_from([FILE_KIND_WAL, FILE_KIND_SST, FILE_KIND_MANIFEST]),
    scheme=st.integers(min_value=0, max_value=255),
    dek_id=st.text(min_size=0, max_size=40).map(lambda s: s.replace("\x00", "")),
    nonce=st.binary(max_size=32),
)
def test_roundtrip_property(kind, scheme, dek_id, nonce):
    envelope = Envelope(kind, scheme, dek_id, nonce)
    encoded = envelope.encode()
    assert len(encoded) <= MAX_ENVELOPE_SIZE
    decoded = decode_envelope(encoded)
    assert decoded.file_kind == kind
    assert decoded.scheme_id == scheme
    assert decoded.dek_id == dek_id
    assert decoded.nonce == nonce
