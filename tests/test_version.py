"""Tests for FileMetadata, VersionEdit serialization, Version, VersionSet."""

import pytest

from repro.env.mem import MemEnv
from repro.errors import RecoveryError
from repro.lsm.filecrypto import PlaintextCryptoProvider
from repro.lsm.version import FileMetadata, Version, VersionEdit, VersionSet


def _meta(number, smallest=b"a", largest=b"z", size=100):
    return FileMetadata(
        number=number,
        size=size,
        smallest=smallest,
        largest=largest,
        smallest_seq=1,
        largest_seq=10,
        num_entries=5,
        dek_id=f"dek-{number}",
    )


def test_file_metadata_overlaps():
    meta = _meta(1, b"c", b"f")
    assert meta.overlaps(b"a", b"d")
    assert meta.overlaps(b"d", b"e")
    assert meta.overlaps(b"f", b"z")
    assert not meta.overlaps(b"g", b"z")
    assert not meta.overlaps(b"a", b"b")
    assert meta.overlaps(None, None)
    assert meta.overlaps(None, b"c")
    assert meta.overlaps(b"f", None)


def test_version_edit_roundtrip():
    edit = VersionEdit(log_number=7, next_file_number=12, last_sequence=99)
    edit.add_file(0, _meta(3))
    edit.add_file(2, _meta(4, b"m", b"p"))
    edit.delete_file(1, 2)
    decoded = VersionEdit.decode(edit.encode())
    assert decoded.log_number == 7
    assert decoded.next_file_number == 12
    assert decoded.last_sequence == 99
    assert decoded.deleted_files == [(1, 2)]
    assert decoded.new_files == edit.new_files


def test_version_apply_add_delete():
    version = Version(7)
    edit = VersionEdit()
    edit.add_file(0, _meta(1))
    edit.add_file(0, _meta(2))
    edit.add_file(1, _meta(3, b"a", b"m"))
    version = version.apply(edit)
    assert [m.number for m in version.levels[0]] == [2, 1]  # newest first
    assert version.num_files() == 3
    edit2 = VersionEdit()
    edit2.delete_file(0, 2)
    version = version.apply(edit2)
    assert [m.number for m in version.levels[0]] == [1]


def test_version_level1_sorted_by_key():
    version = Version(7)
    edit = VersionEdit()
    edit.add_file(1, _meta(5, b"n", b"z"))
    edit.add_file(1, _meta(6, b"a", b"m"))
    version = version.apply(edit)
    assert [m.number for m in version.levels[1]] == [6, 5]


def test_candidates_for_key():
    version = Version(7)
    edit = VersionEdit()
    edit.add_file(0, _meta(1, b"a", b"m"))
    edit.add_file(0, _meta(2, b"k", b"z"))
    edit.add_file(1, _meta(3, b"a", b"h"))
    edit.add_file(1, _meta(4, b"i", b"p"))
    version = version.apply(edit)
    candidates = version.candidates_for_key(b"l")
    numbers = [meta.number for __, meta in candidates]
    assert numbers == [2, 1, 4]  # L0 newest first, then the one L1 file
    assert [meta.number for __, meta in version.candidates_for_key(b"q")] == [2]


def test_overlapping_files():
    version = Version(7)
    edit = VersionEdit()
    edit.add_file(1, _meta(1, b"a", b"f"))
    edit.add_file(1, _meta(2, b"g", b"m"))
    edit.add_file(1, _meta(3, b"n", b"z"))
    version = version.apply(edit)
    overlap = version.overlapping_files(1, b"e", b"h")
    assert [m.number for m in overlap] == [1, 2]


def test_version_set_manifest_roundtrip():
    env = MemEnv()
    provider = PlaintextCryptoProvider()
    versions = VersionSet(env, "/db", provider, 7)
    versions.log_number = 5
    versions.last_sequence = 42
    versions.create_manifest()
    edit = VersionEdit(last_sequence=100)
    edit.add_file(0, _meta(9, b"k1", b"k9"))
    versions.log_and_apply(edit)
    versions.close()

    recovered = VersionSet(env, "/db", provider, 7)
    recovered.recover()
    assert recovered.log_number == 5
    assert recovered.last_sequence == 100
    assert recovered.next_file_number > 9
    files = recovered.current.all_files()
    assert len(files) == 1
    assert files[0][1].number == 9
    assert files[0][1].dek_id == "dek-9"


def test_manifest_rotation_deletes_old():
    env = MemEnv()
    provider = PlaintextCryptoProvider()
    versions = VersionSet(env, "/db", provider, 7)
    versions.create_manifest()
    first_manifest = [n for n in env.list_dir("/db") if n.startswith("MANIFEST")]
    versions.create_manifest()
    second_manifest = [n for n in env.list_dir("/db") if n.startswith("MANIFEST")]
    assert len(second_manifest) == 1
    assert first_manifest != second_manifest
    current = env.read_file("/db/CURRENT").decode().strip()
    assert current == second_manifest[0]


def test_recover_missing_manifest_raises():
    env = MemEnv()
    env.write_file("/db/CURRENT", b"MANIFEST-000099\n")
    versions = VersionSet(env, "/db", PlaintextCryptoProvider(), 7)
    with pytest.raises(RecoveryError):
        versions.recover()
