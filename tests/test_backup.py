"""Tests for the incremental backup engine."""

import pytest

from repro.env.mem import MemEnv
from repro.errors import NotFoundError
from repro.keys.kds import InMemoryKDS
from repro.lsm.backup import BackupEngine
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.shield import ShieldOptions, open_shield_db


def _options(env):
    return Options(env=env, write_buffer_size=8 * 1024, block_size=1024)


def test_backup_and_restore_roundtrip():
    env = MemEnv()
    db = DB("/src", _options(env))
    engine = BackupEngine(env, "/backups")
    for i in range(300):
        db.put(b"key-%03d" % i, b"v-%03d" % i)
    info = engine.create_backup(db)
    assert info.backup_id == 1
    assert info.new_files_copied >= 1
    db.close()

    engine.restore(1, "/restored")
    restored = DB("/restored", _options(env))
    try:
        for i in range(0, 300, 17):
            assert restored.get(b"key-%03d" % i) == b"v-%03d" % i
    finally:
        restored.close()


def test_incremental_backup_shares_files():
    env = MemEnv()
    db = DB("/src", _options(env))
    engine = BackupEngine(env, "/backups")
    for i in range(300):
        db.put(b"key-%03d" % i, b"v1")
    first = engine.create_backup(db)
    # Small delta: only new files should be copied the second time.
    db.put(b"key-000", b"v2")
    second = engine.create_backup(db)
    assert second.backup_id == 2
    assert second.new_files_copied < first.new_files_copied + 2
    shared = set(first.file_numbers) & set(second.file_numbers)
    assert shared  # old SSTs are reused, not re-copied
    db.close()

    # Both backups restore to their own point in time.
    engine.restore(1, "/r1")
    engine.restore(2, "/r2")
    r1 = DB("/r1", _options(env))
    r2 = DB("/r2", _options(env))
    try:
        assert r1.get(b"key-000") == b"v1"
        assert r2.get(b"key-000") == b"v2"
    finally:
        r1.close()
        r2.close()


def test_restore_is_independent_of_source():
    env = MemEnv()
    db = DB("/src", _options(env))
    engine = BackupEngine(env, "/backups")
    db.put(b"k", b"original")
    engine.create_backup(db)
    db.put(b"k", b"mutated")
    db.flush()
    db.close()
    engine.restore(1, "/r")
    restored = DB("/r", _options(env))
    try:
        assert restored.get(b"k") == b"original"
    finally:
        restored.close()


def test_purge_old_backups_garbage_collects():
    env = MemEnv()
    db = DB("/src", _options(env))
    engine = BackupEngine(env, "/backups")
    for generation in range(3):
        for i in range(200):
            db.put(b"key-%03d" % i, b"gen-%d" % generation)
        engine.create_backup(db)
        db.force_compaction()  # rewrite files so generations don't share
    db.close()
    assert len(engine.list_backups()) == 3
    deleted = engine.purge_old_backups(keep=1)
    assert len(engine.list_backups()) == 1
    assert deleted > 0
    # The survivor still restores.
    survivor = engine.list_backups()[0]
    engine.restore(survivor.backup_id, "/r")
    restored = DB("/r", _options(env))
    try:
        assert restored.get(b"key-000") == b"gen-2"
    finally:
        restored.close()


def test_restore_unknown_backup():
    engine = BackupEngine(MemEnv(), "/backups")
    with pytest.raises(NotFoundError):
        engine.restore(42, "/nope")
    assert engine.list_backups() == []


def test_encrypted_backup_restores_via_kds():
    env = MemEnv()
    kds = InMemoryKDS()
    db = open_shield_db("/src", ShieldOptions(kds=kds), _options(env))
    engine = BackupEngine(env, "/backups")
    for i in range(200):
        db.put(b"key-%03d" % i, b"secret-%03d" % i)
    engine.create_backup(db)
    db.close()
    # Backed-up bytes are still ciphertext.
    for name in env.list_dir("/backups/shared"):
        assert b"secret-" not in env.read_file(f"/backups/shared/{name}")
    engine.restore(1, "/r")
    restored = open_shield_db("/r", ShieldOptions(kds=kds), _options(env))
    try:
        assert restored.get(b"key-100") == b"secret-100"
    finally:
        restored.close()
