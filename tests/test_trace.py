"""Tests for workload trace capture and replay."""

from repro.bench.trace import TracingDB, read_trace, replay_trace
from repro.env.mem import MemEnv
from repro.keys.kds import InMemoryKDS
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.shield import ShieldOptions, open_shield_db


def _db(env, path="/t"):
    return DB(path, Options(env=env, write_buffer_size=8 * 1024))


def test_trace_records_all_op_kinds():
    env = MemEnv()
    traced = TracingDB(_db(env), env, "/trace.bin")
    traced.put(b"k1", b"v1")
    traced.get(b"k1")
    traced.delete(b"k1")
    traced.scan(b"a", b"z")
    traced.close_trace()
    traced.close()  # passthrough to the underlying DB

    ops = read_trace(env, "/trace.bin")
    assert [op for op, __, ___ in ops] == [1, 2, 3, 4]
    assert ops[0] == (1, b"k1", b"v1")
    assert ops[3] == (4, b"a", b"z")
    assert traced.operations_traced == 4


def test_traced_db_behaves_like_db():
    env = MemEnv()
    traced = TracingDB(_db(env), env, "/trace.bin")
    traced.put(b"k", b"v")
    assert traced.get(b"k") == b"v"
    traced.flush()  # passthrough attribute
    assert traced.get_property("repro.last-sequence") >= 1
    traced.close_trace()
    traced.close()


def test_replay_reproduces_state():
    env = MemEnv()
    traced = TracingDB(_db(env, "/src"), env, "/trace.bin")
    for i in range(150):
        traced.put(b"key-%03d" % i, b"value-%03d" % i)
    for i in range(0, 150, 3):
        traced.delete(b"key-%03d" % i)
    traced.get(b"key-001")
    traced.close_trace()
    expected = dict(traced.scan())
    traced.close()

    replay_env = MemEnv()
    target = _db(replay_env, "/dst")
    counts = replay_trace(target, env, "/trace.bin")
    try:
        assert counts["put"] == 150
        assert counts["delete"] == 50
        assert counts["get"] == 1
        assert dict(target.scan()) == expected
    finally:
        target.close()


def test_replay_plaintext_trace_against_shield():
    """The motivating flow: capture on the baseline, evaluate on SHIELD."""
    env = MemEnv()
    traced = TracingDB(_db(env, "/src"), env, "/trace.bin")
    for i in range(100):
        traced.put(b"key-%03d" % i, b"v")
    traced.close_trace()
    traced.close()

    shield_env = MemEnv()
    shield_db = open_shield_db(
        "/dst",
        ShieldOptions(kds=InMemoryKDS()),
        Options(env=shield_env, write_buffer_size=8 * 1024),
    )
    try:
        replay_trace(shield_db, env, "/trace.bin")
        assert shield_db.get(b"key-050") == b"v"
    finally:
        shield_db.close()
