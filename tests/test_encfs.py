"""Tests for the instance-level design (EncryptedEnv)."""

import pytest

from repro.crypto.cipher import generate_key
from repro.encfs.env import EncryptedEnv, reencrypt_file
from repro.env.mem import MemEnv
from repro.errors import CorruptionError, EncryptionError
from repro.lsm.db import DB
from repro.lsm.options import Options


def _env_pair(scheme="shake-ctr"):
    inner = MemEnv()
    key = generate_key(scheme)
    return inner, EncryptedEnv(inner, key, scheme), key


def test_write_read_roundtrip():
    inner, env, __ = _env_pair()
    env.write_file("/f", b"hello plaintext world")
    assert env.read_file("/f") == b"hello plaintext world"
    assert b"plaintext" not in inner.read_file("/f")


def test_random_access_decrypts_at_offset():
    __, env, ___ = _env_pair()
    env.write_file("/f", bytes(range(200)))
    with env.new_random_access_file("/f") as handle:
        assert handle.read(50, 10) == bytes(range(50, 60))
        assert handle.size() == 200


def test_multiple_appends_continuous_stream():
    inner, env, __ = _env_pair()
    with env.new_writable_file("/f") as handle:
        handle.append(b"part-one|")
        handle.append(b"part-two")
        assert handle.tell() == 17
        handle.sync()
    assert env.read_file("/f") == b"part-one|part-two"


def test_file_size_excludes_header():
    __, env, ___ = _env_pair()
    env.write_file("/f", b"12345")
    assert env.file_size("/f") == 5


def test_each_file_fresh_nonce():
    inner, env, __ = _env_pair()
    env.write_file("/a", b"same-content")
    env.write_file("/b", b"same-content")
    # Single DEK but per-file nonces: ciphertexts must differ.
    assert inner.read_file("/a") != inner.read_file("/b")


def test_wrong_key_garbles():
    inner, env, __ = _env_pair()
    env.write_file("/f", b"secret")
    wrong = EncryptedEnv(inner, b"x" * 32, "shake-ctr")
    assert wrong.read_file("/f") != b"secret"


def test_plain_file_rejected():
    inner, env, __ = _env_pair()
    inner.write_file("/plain", b"not encrypted")
    with pytest.raises(CorruptionError):
        env.read_file("/plain")


def test_bad_key_size_rejected():
    with pytest.raises(EncryptionError):
        EncryptedEnv(MemEnv(), b"short")


def test_scheme_mismatch_rejected():
    inner = MemEnv()
    shake_env = EncryptedEnv(inner, generate_key("shake-ctr"), "shake-ctr")
    shake_env.write_file("/f", b"x")
    chacha_env = EncryptedEnv(inner, generate_key("chacha20"), "chacha20")
    with pytest.raises(EncryptionError):
        chacha_env.read_file("/f")


def test_passthrough_operations():
    inner, env, __ = _env_pair()
    env.write_file("/dir/a", b"1")
    env.rename_file("/dir/a", "/dir/b")
    assert env.file_exists("/dir/b")
    assert env.list_dir("/dir") == ["b"]
    env.delete_file("/dir/b")
    assert not env.file_exists("/dir/b")


def test_reencrypt_file_rotation():
    inner, env, __ = _env_pair()
    env.write_file("/f", b"rotate-me")
    new_key = generate_key("shake-ctr")
    new_env = EncryptedEnv(inner, new_key, "shake-ctr")
    old_cipher = inner.read_file("/f")
    reencrypt_file(env, "/f", new_env)
    assert inner.read_file("/f") != old_cipher
    assert new_env.read_file("/f") == b"rotate-me"
    assert env.read_file("/f") != b"rotate-me"  # old key no longer works


def test_full_db_on_encrypted_env():
    """The whole engine runs unmodified on top of EncryptedEnv (Section 4:
    'the core LSM-KVS codebase remains unchanged')."""
    inner = MemEnv()
    key = generate_key("shake-ctr")
    options = Options(
        env=EncryptedEnv(inner, key),
        write_buffer_size=4 * 1024,
        block_size=1024,
    )
    with DB("/db", options) as db:
        for i in range(500):
            db.put(b"key-%04d" % i, b"secret-value-%04d" % i)
        db.flush()
        for i in range(0, 500, 37):
            assert db.get(b"key-%04d" % i) == b"secret-value-%04d" % i
    # No plaintext anywhere on the underlying storage.
    for name in inner.list_dir("/db"):
        raw = inner.read_file(f"/db/{name}")
        assert b"secret-value" not in raw
        assert b"key-0001" not in raw


def test_db_reopens_on_encrypted_env():
    inner = MemEnv()
    key = generate_key("shake-ctr")

    def options():
        return Options(env=EncryptedEnv(inner, key), write_buffer_size=4 * 1024)

    db = DB("/db", options())
    db.put(b"durable", b"data")
    db.close()
    with DB("/db", options()) as reopened:
        assert reopened.get(b"durable") == b"data"


def test_db_unreadable_with_wrong_instance_key():
    inner = MemEnv()
    db = DB("/db", Options(env=EncryptedEnv(inner, b"a" * 32)))
    db.put(b"k", b"v")
    db.close()
    with pytest.raises(Exception):
        DB("/db", Options(env=EncryptedEnv(inner, b"b" * 32)))
