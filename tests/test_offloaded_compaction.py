"""End-to-end offloaded compaction with SHIELD: the Section 5.6 case study.

The compaction worker is a different server.  It must (1) learn each input
file's DEK from the envelope metadata, (2) fetch those DEKs from the KDS
under its own identity, (3) provision fresh DEKs for its outputs, and
(4) leave the compute-side DB able to read everything afterwards.
"""

import pytest

from repro.dist.deployment import build_ds_deployment
from repro.dist.network import NetworkConfig
from repro.keys.cache import SecureDEKCache
from repro.keys.kds import InMemoryKDS, SimulatedKDS
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.shield import ShieldOptions, open_shield_db
from repro.util.clock import VirtualClock


def _engine_options(**overrides):
    defaults = dict(
        write_buffer_size=4 * 1024,
        block_size=1024,
        max_bytes_for_level_base=16 * 1024,
        target_file_size=8 * 1024,
        level0_file_num_compaction_trigger=2,
    )
    defaults.update(overrides)
    return Options(**defaults)


def test_offloaded_compaction_plaintext():
    deployment = build_ds_deployment(clock=VirtualClock())
    options = deployment.db_options(_engine_options())
    options.compaction_service = deployment.compaction_service(options=options)
    with DB("/db", options) as db:
        for i in range(3000):
            db.put(b"key-%05d" % (i % 600), b"v" * 50)
        db.compact_range()
        service = options.compaction_service
        assert service.stats.counter("service.jobs").value > 0
        assert service.stats.counter("service.bytes_written").value > 0
        for i in range(600):
            assert db.get(b"key-%05d" % i) == b"v" * 50


def test_offloaded_compaction_data_stays_off_the_link():
    deployment = build_ds_deployment(clock=VirtualClock())
    options = deployment.db_options(_engine_options())
    options.compaction_service = deployment.compaction_service(options=options)
    with DB("/db", options) as db:
        for i in range(3000):
            db.put(b"key-%05d" % i, b"v" * 50)
        db.compact_range()
    service_read = options.compaction_service.stats.counter(
        "service.bytes_read"
    ).value
    assert service_read > 0
    # The compute link carried flushes but NOT the compaction reads: compute
    # received-bytes stay near zero (only envelope/footer probes from gets).
    assert deployment.link.bytes_received < service_read / 4


def test_offloaded_compaction_shield_dek_sharing():
    clock = VirtualClock()
    deployment = build_ds_deployment(clock=clock)
    kds = SimulatedKDS(clock=clock, request_latency_s=0.001)
    kds.authorize_server("compute-1")
    kds.authorize_server("compaction-1")

    compute_shield = ShieldOptions(kds=kds, server_id="compute-1")
    engine = deployment.db_options(_engine_options())
    worker_shield = ShieldOptions(kds=kds, server_id="compaction-1")
    worker_provider = worker_shield.build_provider()
    engine.compaction_service = deployment.compaction_service(
        provider=worker_provider, options=_engine_options()
    )
    db = open_shield_db("/db", compute_shield, engine)
    with db:
        for i in range(3000):
            db.put(b"key-%05d" % (i % 600), b"secret-%05d" % i)
        db.compact_range()
        # The worker resolved input DEKs through the KDS under its identity.
        worker_client = worker_provider.key_client
        assert worker_client.stats.counter("keyclient.kds_fetches").value > 0
        # The worker provisioned fresh DEKs for its outputs.
        assert worker_provider.deks_provisioned > 0
        # The compute DB reads the worker's outputs fine (its own KDS fetch).
        for i in range(0, 600, 37):
            assert db.get(b"key-%05d" % i) is not None
        # Nothing plaintext hit storage.
        for name in deployment.storage.env.list_dir("/db"):
            if name == "CURRENT":
                continue
            assert b"secret-" not in deployment.storage.env.read_file(f"/db/{name}")


def test_offloaded_worker_unauthorized_fails():
    clock = VirtualClock()
    deployment = build_ds_deployment(clock=clock)
    kds = SimulatedKDS(clock=clock)
    kds.authorize_server("compute-1")  # the worker is NOT authorized

    compute_shield = ShieldOptions(kds=kds, server_id="compute-1")
    engine = deployment.db_options(_engine_options())
    rogue_shield = ShieldOptions(kds=kds, server_id="rogue-worker")
    engine.compaction_service = deployment.compaction_service(
        provider=rogue_shield.build_provider(), options=_engine_options()
    )
    db = open_shield_db("/db", compute_shield, engine)
    from repro.errors import IOError_

    with pytest.raises(IOError_):
        for i in range(3000):
            db.put(b"key-%05d" % i, b"v" * 50)
        db.compact_range()
    db.simulate_crash()


def test_offloaded_worker_uses_secure_cache(tmp_path):
    clock = VirtualClock()
    deployment = build_ds_deployment(clock=clock)
    kds = SimulatedKDS(clock=clock, request_latency_s=0.01)
    kds.authorize_server("compute-1")
    kds.authorize_server("compaction-1")
    worker_cache = SecureDEKCache(str(tmp_path / "worker-cache"), "pw", iterations=10)

    compute_shield = ShieldOptions(kds=kds, server_id="compute-1")
    engine = deployment.db_options(_engine_options())
    worker_shield = ShieldOptions(
        kds=kds, server_id="compaction-1", dek_cache=worker_cache
    )
    worker_provider = worker_shield.build_provider()
    engine.compaction_service = deployment.compaction_service(
        provider=worker_provider, options=_engine_options()
    )
    db = open_shield_db("/db", compute_shield, engine)
    with db:
        for i in range(3000):
            db.put(b"key-%05d" % i, b"v" * 50)
        db.compact_range()
        # Output DEKs the worker provisioned got cached securely on disk.
        assert len(worker_cache) > 0


def test_readonly_instance_shares_files():
    from repro.dist.readonly import ReadOnlyInstance

    deployment = build_ds_deployment(clock=VirtualClock())
    kds = InMemoryKDS()
    engine = deployment.db_options(_engine_options())
    shield = ShieldOptions(kds=kds, server_id="primary", wal_buffer_size=0)
    db = open_shield_db("/db", shield, engine)
    for i in range(500):
        db.put(b"key-%04d" % i, b"value-%04d" % i)
    db.flush()
    db.put(b"wal-only", b"fresh")  # lives in the WAL, not yet flushed

    reader_shield = ShieldOptions(kds=kds, server_id="reader-1")
    ro_options = deployment.db_options(_engine_options())
    readonly = ReadOnlyInstance(
        "/db", ro_options, provider=reader_shield.build_provider()
    )
    with readonly:
        assert readonly.get(b"key-0123") == b"value-0123"
        assert readonly.get(b"wal-only") == b"fresh"
        assert readonly.get(b"missing") is None
        scanned = readonly.scan(b"key-0000", b"key-0010")
        assert len(scanned) == 10
    db.close()


def test_readonly_refresh_sees_new_data():
    from repro.dist.readonly import ReadOnlyInstance

    deployment = build_ds_deployment(clock=VirtualClock())
    engine = deployment.db_options(_engine_options())
    db = DB("/db", engine)
    db.put(b"first", b"1")
    db.flush()
    ro_options = deployment.db_options(_engine_options())
    readonly = ReadOnlyInstance("/db", ro_options)
    assert readonly.get(b"first") == b"1"
    db.put(b"second", b"2")
    db.flush()
    assert readonly.get(b"second") is None  # stale view
    readonly.refresh()
    assert readonly.get(b"second") == b"2"
    readonly.close()
    db.close()
