"""Cross-cutting integration scenarios: hierarchical key policy end to end,
scans racing compaction, and a randomized soak across all features."""

import random
import threading

import pytest

from repro.dist.deployment import build_ds_deployment
from repro.env.mem import MemEnv
from repro.keys.kds import SimulatedKDS
from repro.keys.policies import HierarchicalDerivationPolicy
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.shield import ShieldOptions, open_shield_db
from repro.util.clock import VirtualClock


def test_hierarchical_policy_end_to_end():
    """SHIELD over a KDS that derives every DEK from one master secret: the
    KDS can be rebuilt from the master, and SHIELD never notices."""
    master = b"m" * 32
    clock = VirtualClock()
    env = MemEnv()
    kds = SimulatedKDS(
        policy=HierarchicalDerivationPolicy(master=master), clock=clock
    )
    kds.authorize_server("s1")
    shield = ShieldOptions(kds=kds, server_id="s1")
    db = open_shield_db(
        "/h", shield, Options(env=env, write_buffer_size=4 * 1024)
    )
    for i in range(400):
        db.put(b"key-%04d" % i, b"v-%04d" % i)
    db.flush()
    db.close()

    # Disaster: the KDS loses its DEK table but keeps the master secret.
    # Re-derive on demand via a fresh KDS with the same policy by
    # re-registering each envelope's DEK-ID.
    from repro.lsm.envelope import MAX_ENVELOPE_SIZE, decode_envelope
    from repro.keys.dek import DEK

    rebuilt = SimulatedKDS(
        policy=HierarchicalDerivationPolicy(master=master), clock=clock
    )
    rebuilt.authorize_server("s1")
    policy = rebuilt.policy
    for name in env.list_dir("/h"):
        if name == "CURRENT":
            continue
        envelope = decode_envelope(env.read_file(f"/h/{name}")[:MAX_ENVELOPE_SIZE])
        if envelope.encrypted:
            key = policy.derive(envelope.dek_id, "shake-ctr")
            with rebuilt._lock:
                rebuilt._deks[envelope.dek_id] = DEK(
                    dek_id=envelope.dek_id, key=key, scheme="shake-ctr"
                )
    reopened = open_shield_db(
        "/h",
        ShieldOptions(kds=rebuilt, server_id="s1"),
        Options(env=env, write_buffer_size=4 * 1024),
    )
    try:
        for i in range(0, 400, 37):
            assert reopened.get(b"key-%04d" % i) == b"v-%04d" % i
    finally:
        reopened.close()


def test_scans_race_compaction():
    options = Options(
        env=MemEnv(),
        write_buffer_size=4 * 1024,
        block_size=1024,
        level0_file_num_compaction_trigger=2,
        max_background_jobs=2,
    )
    db = DB("/race", options)
    errors = []
    stop = threading.Event()

    for i in range(200):
        db.put(b"stable-%03d" % i, b"fixed")

    def scanner():
        try:
            while not stop.is_set():
                rows = db.scan(b"stable-", b"stable-\xff")
                assert len(rows) == 200
                assert all(v == b"fixed" for __, v in rows)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    thread = threading.Thread(target=scanner)
    thread.start()
    try:
        for i in range(3000):
            db.put(b"churn-%05d" % (i % 700), b"x" * 40)
    finally:
        stop.set()
        thread.join()
        db.close()
    assert not errors


@pytest.mark.parametrize("offload", [False, True])
def test_randomized_soak_in_ds(offload):
    """A randomized mixed workload over the full DS stack."""
    clock = VirtualClock()
    deployment = build_ds_deployment(clock=clock)
    kds = SimulatedKDS(clock=clock, request_latency_s=0.0005)
    kds.authorize_server("compute-1")
    kds.authorize_server("compaction-1")
    engine = deployment.db_options(
        Options(
            write_buffer_size=4 * 1024,
            block_size=1024,
            level0_file_num_compaction_trigger=2,
        )
    )
    if offload:
        worker = ShieldOptions(kds=kds, server_id="compaction-1")
        engine.compaction_service = deployment.compaction_service(
            provider=worker.build_provider(), options=engine
        )
    db = open_shield_db(
        "/soak", ShieldOptions(kds=kds, server_id="compute-1"), engine
    )
    model = {}
    rand = random.Random(7)
    try:
        for step in range(4000):
            roll = rand.random()
            key = b"key-%04d" % rand.randrange(400)
            if roll < 0.55:
                value = b"v-%06d" % step
                db.put(key, value)
                model[key] = value
            elif roll < 0.7:
                db.delete(key)
                model.pop(key, None)
            elif roll < 0.95:
                assert db.get(key) == model.get(key)
            else:
                got = dict(db.scan(key, key + b"\xff", limit=5))
                for k, v in got.items():
                    assert model.get(k) == v
        db.compact_range()
        for key, value in model.items():
            assert db.get(key) == value
        assert dict(db.scan()) == model
    finally:
        db.close()
