"""Tests for the DEK model and key policies."""

import pytest

from repro.crypto.cipher import spec_for
from repro.keys.dek import DEK, new_dek_id
from repro.keys.policies import (
    HierarchicalDerivationPolicy,
    PerFileIsolationPolicy,
    PerServerSharingPolicy,
)


def test_dek_id_unique():
    ids = {new_dek_id() for _ in range(100)}
    assert len(ids) == 100
    assert all(i.startswith("dek-") for i in ids)


def test_dek_validation():
    with pytest.raises(ValueError):
        DEK(dek_id="", key=b"k", scheme="shake-ctr")
    with pytest.raises(ValueError):
        DEK(dek_id="dek-1", key=b"", scheme="shake-ctr")


def test_dek_repr_hides_key():
    dek = DEK(dek_id="dek-1", key=b"supersecret" * 3, scheme="shake-ctr")
    assert "supersecret" not in repr(dek)


def test_dek_fingerprint_stable():
    dek = DEK(dek_id="dek-1", key=b"k" * 32, scheme="shake-ctr")
    assert dek.fingerprint() == dek.fingerprint()
    other = DEK(dek_id="dek-2", key=b"j" * 32, scheme="shake-ctr")
    assert dek.fingerprint() != other.fingerprint()


def test_per_file_isolation_unique_keys():
    policy = PerFileIsolationPolicy()
    deks = [policy.make_dek("s1", "shake-ctr", 0.0) for _ in range(10)]
    assert len({d.key for d in deks}) == 10
    assert len({d.dek_id for d in deks}) == 10
    assert all(len(d.key) == spec_for("shake-ctr").key_size for d in deks)


def test_per_server_sharing_same_key_per_server():
    policy = PerServerSharingPolicy()
    a1 = policy.make_dek("server-a", "shake-ctr", 0.0)
    a2 = policy.make_dek("server-a", "shake-ctr", 0.0)
    b1 = policy.make_dek("server-b", "shake-ctr", 0.0)
    assert a1.key == a2.key
    assert a1.dek_id != a2.dek_id  # identifiers stay unique
    assert a1.key != b1.key


def test_per_server_sharing_scheme_separation():
    policy = PerServerSharingPolicy()
    shake = policy.make_dek("s", "shake-ctr", 0.0)
    aes = policy.make_dek("s", "aes-128-ctr", 0.0)
    assert shake.key != aes.key
    assert len(aes.key) == 16


def test_hierarchical_derivation_reproducible():
    policy = HierarchicalDerivationPolicy(master=b"m" * 32)
    dek = policy.make_dek("s1", "shake-ctr", 0.0)
    assert policy.derive(dek.dek_id, "shake-ctr") == dek.key
    # A different master derives different keys.
    other = HierarchicalDerivationPolicy(master=b"n" * 32)
    assert other.derive(dek.dek_id, "shake-ctr") != dek.key


def test_hierarchical_derivation_key_sizes():
    policy = HierarchicalDerivationPolicy()
    aes_dek = policy.make_dek("s", "aes-128-ctr", 0.0)
    assert len(aes_dek.key) == 16
