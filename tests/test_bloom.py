"""Tests for the bloom filter."""

import random

from hypothesis import given, strategies as st

from repro.lsm.bloom import BloomFilter


def test_no_false_negatives():
    keys = [b"key-%d" % i for i in range(1000)]
    bloom = BloomFilter.build(keys, bits_per_key=10)
    assert all(bloom.may_contain(k) for k in keys)


def test_false_positive_rate_reasonable():
    keys = [b"key-%d" % i for i in range(2000)]
    bloom = BloomFilter.build(keys, bits_per_key=10)
    rng = random.Random(42)
    probes = [b"other-%d" % rng.randrange(10 ** 9) for _ in range(2000)]
    false_positives = sum(bloom.may_contain(p) for p in probes)
    # 10 bits/key should give ~1% FP; allow a generous margin.
    assert false_positives / len(probes) < 0.05


def test_encode_decode_roundtrip():
    keys = [b"a", b"b", b"c"]
    bloom = BloomFilter.build(keys, bits_per_key=10)
    decoded = BloomFilter.decode(bloom.encode())
    assert decoded.num_probes == bloom.num_probes
    assert all(decoded.may_contain(k) for k in keys)


def test_empty_filter():
    bloom = BloomFilter.build([], bits_per_key=10)
    # An empty filter has all bits clear: everything is "definitely absent".
    assert not bloom.may_contain(b"anything")


@given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=100))
def test_membership_property(keys):
    bloom = BloomFilter.build(keys, bits_per_key=12)
    assert all(bloom.may_contain(k) for k in keys)
