"""CTR mode pinned to NIST SP 800-38A F.5.1 (AES-128-CTR)."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import AES
from repro.crypto.ctr import CtrCipher
from repro.errors import EncryptionError

# SP 800-38A F.5.1: the initial counter block is
# f0f1f2f3f4f5f6f7f8f9fafb fcfdfeff -> our nonce is the first 12 bytes and the
# starting 32-bit counter is 0xfcfdfeff.
_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
_NONCE = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafb")
_START_COUNTER = 0xFCFDFEFF
_PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
_CIPHERTEXT = bytes.fromhex(
    "874d6191b620e3261bef6864990db6ce"
    "9806f66b7970fdff8617187bb9fffdff"
    "5ae4df3edbd5d35e5b4f09020db03eab"
    "1e031dda2fbe03d1792170a0f3009cee"
)


def _sp800_38a_cipher():
    return CtrCipher(AES(_KEY), _NONCE)


def test_sp800_38a_f51_vector():
    cipher = _sp800_38a_cipher()
    offset = _START_COUNTER * 16
    assert cipher.xor_at(_PLAINTEXT, offset) == _CIPHERTEXT


def test_sp800_38a_decrypt():
    cipher = _sp800_38a_cipher()
    offset = _START_COUNTER * 16
    assert cipher.xor_at(_CIPHERTEXT, offset) == _PLAINTEXT


def test_random_access_matches_sequential():
    cipher = CtrCipher(AES(bytes(16)), bytes(12))
    full = cipher.keystream(0, 100)
    assert cipher.keystream(37, 20) == full[37:57]
    assert cipher.keystream(0, 1) == full[:1]
    assert cipher.keystream(99, 1) == full[99:]


def test_empty_keystream():
    cipher = CtrCipher(AES(bytes(16)), bytes(12))
    assert cipher.keystream(10, 0) == b""
    assert cipher.xor_at(b"", 0) == b""


def test_bad_nonce_size():
    with pytest.raises(EncryptionError):
        CtrCipher(AES(bytes(16)), b"short")


def test_counter_overflow_rejected():
    cipher = CtrCipher(AES(bytes(16)), bytes(12))
    with pytest.raises(EncryptionError):
        cipher.keystream(2 ** 32 * 16, 16)


@given(st.binary(max_size=300), st.integers(min_value=0, max_value=10_000))
def test_xor_at_is_involution(data, offset):
    cipher = CtrCipher(AES(bytes(16)), bytes(12))
    assert cipher.xor_at(cipher.xor_at(data, offset), offset) == data


@given(st.binary(min_size=1, max_size=64))
def test_nonce_separation(data):
    c1 = CtrCipher(AES(bytes(16)), bytes(12))
    c2 = CtrCipher(AES(bytes(16)), b"\x01" + bytes(11))
    assert c1.xor_at(data, 0) != c2.xor_at(data, 0)
