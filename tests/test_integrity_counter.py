"""Unit tests for the freshness substrate: Merkle roots, trusted
counters, and the verify-and-advance protocol (including the torn-update
window exercised via sync points)."""

import pytest

from repro.env.mem import MemEnv
from repro.errors import CorruptionError, RollbackError
from repro.integrity import (
    EMPTY_ROOT,
    FRESH,
    INITIALIZED,
    ROOT_SIZE,
    TORN_RECOVERED,
    FileTrustedCounter,
    MemoryTrustedCounter,
    leaf_hash,
    merkle_root,
    verify_and_advance,
)
from repro.keys.kds import InMemoryKDS
from repro.lsm.options import Options
from repro.lsm.version import FileMetadata, Version
from repro.shield import ShieldOptions, open_shield_db
from repro.util.syncpoint import SYNC


def _meta(number, smallest=b"a", largest=b"z", size=100):
    return FileMetadata(
        number=number,
        size=size,
        smallest=smallest,
        largest=largest,
        smallest_seq=1,
        largest_seq=9,
        num_entries=5,
        dek_id=f"dek-{number}",
    )


def _version(placement):
    """Build a Version from {level: [FileMetadata, ...]}."""
    version = Version(7)
    for level, metas in placement.items():
        version.levels[level] = list(metas)
    return version


# --------------------------------------------------------------------------
# Merkle root
# --------------------------------------------------------------------------


def test_empty_version_has_empty_root():
    assert merkle_root(_version({})) == EMPTY_ROOT
    assert len(EMPTY_ROOT) == ROOT_SIZE


def test_root_deterministic_and_order_independent():
    a, b, c = _meta(1), _meta(2), _meta(3)
    one = merkle_root(_version({0: [a, b], 1: [c]}))
    two = merkle_root(_version({0: [b, a], 1: [c]}))
    assert one == two
    assert len(one) == ROOT_SIZE


def test_root_binds_file_set_and_placement():
    a, b = _meta(1), _meta(2)
    base = merkle_root(_version({0: [a, b]}))
    # Dropping a file, changing metadata, or moving a file across levels
    # all change the root -- each is a distinct rollback/tamper shape.
    assert merkle_root(_version({0: [a]})) != base
    assert merkle_root(_version({0: [a, _meta(2, size=101)]})) != base
    assert merkle_root(_version({0: [a], 1: [b]})) != base


def test_leaf_hash_domain_separated_from_root():
    meta = _meta(7)
    single = merkle_root(_version({0: [meta]}))
    # A one-file root is its leaf hash promoted, but a forged "leaf" equal
    # to some interior node must not collide: person strings differ.
    assert single == leaf_hash(0, meta)
    assert leaf_hash(0, meta) != leaf_hash(1, meta)


# --------------------------------------------------------------------------
# Counter backends
# --------------------------------------------------------------------------


@pytest.mark.parametrize("make", [
    lambda: MemoryTrustedCounter(),
    lambda: FileTrustedCounter(MemEnv(), "/trust/counter"),
])
def test_counter_advance_semantics(make):
    counter = make()
    assert counter.read() is None
    first = counter.advance(b"root-one")
    assert (first.value, first.root, first.prev_root) == (1, b"root-one", b"")
    second = counter.advance(b"root-two")
    assert (second.value, second.root, second.prev_root) == (
        2,
        b"root-two",
        b"root-one",
    )
    assert counter.read() == second


def test_file_counter_survives_reopen():
    env = MemEnv()
    FileTrustedCounter(env, "/trust/counter").advance(b"anchor")
    state = FileTrustedCounter(env, "/trust/counter").read()
    assert state.value == 1
    assert state.root == b"anchor"


def test_file_counter_refuses_corruption():
    env = MemEnv()
    counter = FileTrustedCounter(env, "/trust/counter")
    counter.advance(b"anchor")
    raw = bytearray(env.read_file("/trust/counter"))
    raw[-1] ^= 0xFF  # smash the CRC
    env.write_file("/trust/counter", bytes(raw))
    with pytest.raises(CorruptionError):
        counter.read()
    env.write_file("/trust/counter", b"JUNK" + bytes(raw[4:]))
    with pytest.raises(CorruptionError):
        counter.read()


def test_memory_counter_fork_is_independent():
    counter = MemoryTrustedCounter()
    counter.advance(b"one")
    fork = counter.fork()
    counter.advance(b"two")
    assert fork.read().root == b"one"
    assert counter.read().root == b"two"


# --------------------------------------------------------------------------
# verify_and_advance protocol
# --------------------------------------------------------------------------


def test_protocol_dispositions():
    counter = MemoryTrustedCounter()
    assert verify_and_advance(counter, b"r1") == INITIALIZED
    assert verify_and_advance(counter, b"r1") == FRESH
    counter.advance(b"r2")  # counter ran ahead: the torn window
    assert verify_and_advance(counter, b"r1") == TORN_RECOVERED
    assert verify_and_advance(counter, b"r1") == FRESH
    with pytest.raises(RollbackError):
        verify_and_advance(counter, b"ancient")


def test_rollback_error_names_counter_value():
    counter = MemoryTrustedCounter()
    counter.advance(b"current")
    with pytest.raises(RollbackError, match="value 1"):
        verify_and_advance(counter, b"stale")


# --------------------------------------------------------------------------
# Torn counter update, end to end through the engine's sync points
# --------------------------------------------------------------------------


def _open(env, kds, counter):
    return open_shield_db(
        "/t",
        ShieldOptions(kds=kds, trusted_counter=counter),
        Options(env=env, write_buffer_size=1024, block_size=512),
    )


def test_torn_counter_update_recovers():
    """Kill the process between the counter advance and the manifest
    write: the counter is one ahead of storage, and the next open must
    re-anchor instead of crying rollback."""
    env = MemEnv()
    kds = InMemoryKDS()
    counter = MemoryTrustedCounter()
    db = _open(env, kds, counter)
    db.put(b"k", b"v1")
    db.flush()
    baseline = counter.read().value
    fork = {}

    def kill():
        if "env" not in fork:  # only the first hit is the crash instant
            fork["env"] = env.fork(durable_only=False)
            fork["kds"] = kds.fork()
            fork["counter"] = counter.fork()
        raise RuntimeError("injected kill after counter advance")

    SYNC.clear()
    SYNC.set_callback("counter:after_persist", kill)
    SYNC.enable()
    try:
        with pytest.raises(Exception):
            db.put(b"k", b"v2")
            db.flush()
    finally:
        SYNC.clear()
        db.close()

    # The crash image's counter really is ahead of its storage.
    assert fork["counter"].read().value == baseline + 1
    recovered = _open(fork["env"], fork["kds"], fork["counter"])
    try:
        assert recovered.get(b"k") is not None
        assert recovered.health()["state"] == "healthy"
        # Recovery re-anchored: a second open of the same image is fresh.
    finally:
        recovered.close()


def test_counter_sync_points_declared():
    declared = set(SYNC.declared())
    assert "counter:before_persist" in declared
    assert "counter:after_persist" in declared
