"""Tests for benchmark key/value generators and workload plumbing."""

import pytest

from repro.bench.keygen import (
    LatestGenerator,
    SequentialKeys,
    UniformKeys,
    ZipfianGenerator,
    ZipfianKeys,
    fnv1a_64,
    format_key,
)
from repro.bench.valuegen import ValueGenerator


def test_format_key_fixed_width():
    assert format_key(42, 16) == b"0000000000000042"
    assert len(format_key(10 ** 20, 16)) == 16  # truncates from the left


def test_sequential_keys():
    gen = SequentialKeys()
    assert [gen.next_index() for _ in range(3)] == [0, 1, 2]
    gen = SequentialKeys(start=10)
    assert gen.next_index() == 10


def test_uniform_keys_in_range_and_seeded():
    a = UniformKeys(100, seed=1)
    b = UniformKeys(100, seed=1)
    values_a = [a.next_index() for _ in range(50)]
    values_b = [b.next_index() for _ in range(50)]
    assert values_a == values_b
    assert all(0 <= v < 100 for v in values_a)
    with pytest.raises(ValueError):
        UniformKeys(0)


def test_zipfian_skew():
    gen = ZipfianGenerator(1000, seed=7)
    samples = [gen.next_value() for _ in range(20_000)]
    assert all(0 <= s < 1000 for s in samples)
    # Rank 0 must dominate: with theta=0.99 over 1000 items it gets ~13%.
    share_0 = samples.count(0) / len(samples)
    assert share_0 > 0.08
    # The top decile of ranks should carry the majority of requests.
    top_decile = sum(1 for s in samples if s < 100) / len(samples)
    assert top_decile > 0.5


def test_scrambled_zipfian_spreads_hot_keys():
    gen = ZipfianKeys(1000, seed=7)
    samples = [gen.next_index() for _ in range(5000)]
    assert all(0 <= s < 1000 for s in samples)
    hottest = max(set(samples), key=samples.count)
    # The hottest key is the scrambled rank 0, not index 0 itself.
    assert hottest == fnv1a_64(0) % 1000


def test_latest_generator_prefers_recent():
    gen = LatestGenerator(1000, seed=3)
    samples = [gen.next_index() for _ in range(10_000)]
    assert all(0 <= s < 1000 for s in samples)
    recent = sum(1 for s in samples if s >= 900) / len(samples)
    assert recent > 0.5
    new_index = gen.advance()
    assert new_index == 1000
    more = [gen.next_index() for _ in range(2000)]
    assert max(more) == 1000  # the new record is now reachable


def test_value_generator_sizes():
    gen = ValueGenerator(100, seed=1)
    assert len(gen.next_value()) == 100
    assert len(gen.next_value(37)) == 37
    big = gen.next_value(3 * 1024 * 1024)
    assert len(big) == 3 * 1024 * 1024
    with pytest.raises(ValueError):
        ValueGenerator(0)


def test_value_generator_deterministic():
    a = ValueGenerator(50, seed=9)
    b = ValueGenerator(50, seed=9)
    assert a.next_value() == b.next_value()
