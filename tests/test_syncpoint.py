"""Tests for the named sync-point registry (the crash-matrix substrate)."""

import pytest

from repro.util.syncpoint import SYNC, SyncPoints

# Importing the instrumented layers registers their points.
import repro.lsm.db  # noqa: F401
import repro.lsm.version  # noqa: F401
import repro.shield.provider  # noqa: F401


def test_declare_is_idempotent_and_enumerable():
    points = SyncPoints()
    name = points.declare("a:first", "the first point")
    assert name == "a:first"
    points.declare("a:first", "a different description is ignored")
    points.declare("b:second", "the second point")
    assert points.declared() == ["a:first", "b:second"]
    assert points.describe("a:first") == "the first point"
    assert points.describe("missing") == ""


def test_disabled_process_is_a_no_op():
    points = SyncPoints()
    points.declare("p")
    fired = []
    points.set_callback("p", lambda: fired.append(1))
    points.process("p")  # never enabled
    assert fired == []
    assert points.hits("p") == 0


def test_enabled_process_counts_and_runs_callback_inline():
    points = SyncPoints()
    points.declare("p")
    fired = []
    points.set_callback("p", lambda: fired.append(1))
    points.enable()
    points.process("p")
    points.process("p")
    assert fired == [1, 1]
    assert points.hits("p") == 2
    # Points without a callback still count.
    points.process("other")
    assert points.hits("other") == 1


def test_callback_exception_propagates_to_the_instrumented_code():
    points = SyncPoints()
    points.enable()

    def boom():
        raise RuntimeError("die here")

    points.set_callback("p", boom)
    with pytest.raises(RuntimeError, match="die here"):
        points.process("p")
    # The hit was still recorded before the kill.
    assert points.hits("p") == 1


def test_clear_removes_callbacks_zeroes_hits_and_disables():
    points = SyncPoints()
    points.enable()
    points.set_callback("p", lambda: None)
    points.process("p")
    points.clear()
    assert not points.enabled
    assert points.hits("p") == 0
    points.process("p")  # disabled again: no counting
    assert points.hits("p") == 0


def test_clear_callback_keeps_point_declared():
    points = SyncPoints()
    points.declare("p", "desc")
    points.set_callback("p", lambda: None)
    points.clear_callback("p")
    points.enable()
    points.process("p")  # no callback left: just counts
    assert points.hits("p") == 1
    assert "p" in points.declared()


def test_engine_declares_the_crash_matrix_points():
    """The crash matrix enumerates SYNC.declared(); every load-bearing
    transition must be registered there."""
    declared = set(SYNC.declared())
    assert {
        "flush:before_sst_write",
        "flush:after_sst_write",
        "flush:after_manifest_apply",
        "compaction:after_outputs",
        "compaction:after_manifest_apply",
        "manifest:before_current_swap",
        "manifest:after_current_swap",
        "wal:before_rotate",
        "wal:after_rotate",
        "dek:before_retire",
        "dek:after_retire",
    } <= declared
    for name in declared:
        assert SYNC.describe(name), f"{name} has no description"
