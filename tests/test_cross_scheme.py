"""Cross-scheme engine tests: SHIELD and EncFS must work identically under
every registered cipher (AES-128/256, ChaCha20, SHAKE, and the AEAD
schemes -- GCM, ChaCha20-Poly1305, SHAKE-EtM).

Pure-Python AES is slow, so these runs are deliberately tiny -- they prove
interchangeability, not performance.
"""

import pytest

from repro.crypto.cipher import available_schemes, generate_key, spec_for
from repro.encfs.env import EncryptedEnv
from repro.env.mem import MemEnv
from repro.errors import EncryptionError
from repro.keys.kds import InMemoryKDS
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.shield import ShieldOptions, open_shield_db

_N = 40


def _options(env):
    return Options(env=env, write_buffer_size=1024, block_size=512)


@pytest.mark.parametrize("scheme", available_schemes())
def test_shield_under_every_scheme(scheme):
    env = MemEnv()
    kds = InMemoryKDS()
    db = open_shield_db(
        "/x", ShieldOptions(kds=kds, scheme=scheme), _options(env)
    )
    with db:
        for i in range(_N):
            db.put(b"k-%02d" % i, b"secret-%02d" % i)
        db.flush()
        for i in range(_N):
            assert db.get(b"k-%02d" % i) == b"secret-%02d" % i
        for name in env.list_dir("/x"):
            if name != "CURRENT":
                assert b"secret-" not in env.read_file(f"/x/{name}")


@pytest.mark.parametrize("scheme", available_schemes())
def test_encfs_under_every_scheme(scheme):
    raw = MemEnv()
    if spec_for(scheme).aead:
        # EncFS intercepts arbitrary-offset reads below the engine; AEAD
        # lives in the SST/WAL formats instead, and the env refuses the
        # mismatch up front rather than corrupting silently.
        with pytest.raises(EncryptionError):
            EncryptedEnv(raw, generate_key(scheme), scheme)
        return
    env = EncryptedEnv(raw, generate_key(scheme), scheme)
    db = DB("/x", _options(env))
    with db:
        for i in range(_N):
            db.put(b"k-%02d" % i, b"secret-%02d" % i)
        db.flush()
        for i in range(_N):
            assert db.get(b"k-%02d" % i) == b"secret-%02d" % i
        for name in raw.list_dir("/x"):
            assert b"secret-" not in raw.read_file(f"/x/{name}")


@pytest.mark.parametrize("scheme", available_schemes())
def test_recovery_under_every_scheme(scheme):
    env = MemEnv()
    kds = InMemoryKDS()
    db = open_shield_db(
        "/x",
        ShieldOptions(kds=kds, scheme=scheme, wal_buffer_size=0),
        _options(env),
    )
    db.put(b"durable", b"value")
    db.simulate_crash()
    recovered = open_shield_db(
        "/x", ShieldOptions(kds=kds, scheme=scheme), _options(env)
    )
    with recovered:
        assert recovered.get(b"durable") == b"value"
