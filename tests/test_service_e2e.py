"""End-to-end acceptance: a SHIELD-encrypted server under concurrent
clients while a replica is killed and reconnects mid-stream, with every
byte of the replication link captured by a recording TCP proxy to prove
no plaintext WAL data crosses the wire.
"""

import socket
import threading

from repro.env.mem import MemEnv
from repro.keys.client import KeyClient
from repro.keys.kds import InMemoryKDS
from repro.lsm.options import Options
from repro.service.replica import Replica
from repro.service.server import KVServer, ServiceConfig
from repro.service.client import KVClient
from repro.shield import ShieldOptions, open_shield_db

SENTINEL = b"PLAINTEXT-WAL-SENTINEL"


class RecordingProxy:
    """A TCP tap: forwards both directions, keeps a copy of every byte.

    The replica dials the proxy instead of the primary, so the captured
    stream is exactly what an eavesdropper on the replication link sees.
    Accepts any number of sequential connections (reconnects included).
    """

    def __init__(self, upstream: tuple):
        self.upstream = upstream
        self.captured = bytearray()
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self._accept = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept.start()

    @property
    def address(self) -> tuple:
        return self._listener.getsockname()[:2]

    def _accept_loop(self):
        while not self._stopping:
            try:
                client_side, __ = self._listener.accept()
            except OSError:
                return
            try:
                server_side = socket.create_connection(self.upstream, timeout=5)
            except OSError:
                client_side.close()
                continue
            for source, sink in ((client_side, server_side),
                                 (server_side, client_side)):
                pump = threading.Thread(
                    target=self._pump, args=(source, sink), daemon=True
                )
                pump.start()
                self._threads.append(pump)

    def _pump(self, source: socket.socket, sink: socket.socket):
        try:
            while True:
                data = source.recv(65536)
                if not data:
                    break
                with self._lock:
                    self.captured.extend(data)
                sink.sendall(data)
        except OSError:
            pass
        finally:
            for sock in (source, sink):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def bytes_captured(self) -> bytes:
        with self._lock:
            return bytes(self.captured)

    def close(self):
        self._stopping = True
        try:
            self._listener.close()
        except OSError:
            pass
        for thread in self._threads:
            thread.join(timeout=1.0)


def test_encrypted_server_with_replica_crash_and_eavesdropper():
    kds = InMemoryKDS()
    db = open_shield_db(
        "/e2e-primary",
        ShieldOptions(kds=kds, server_id="primary", wal_buffer_size=512),
        Options(env=MemEnv(), write_buffer_size=64 * 1024),
    )
    server = KVServer(db, ServiceConfig(num_workers=4)).start()
    proxy = RecordingProxy(server.address)
    replica = Replica(
        *proxy.address, server_id="replica-1",
        key_client=KeyClient(kds, "replica-1"),
        reconnect_backoff_s=0.01,
    )
    replica.start()
    assert replica.wait_connected(timeout=5.0)

    host, port = server.address
    crashed = threading.Event()
    failures: list = []

    def writer(tag: int):
        try:
            with KVClient(host, port) as client:
                for i in range(80):
                    key = b"w%d-%03d" % (tag, i)
                    client.put(key, SENTINEL + b"-%d-%03d" % (tag, i))
                    if tag == 0 and i == 40:
                        replica.simulate_crash()  # kill mid-stream
                        crashed.set()
        except Exception as exc:  # noqa: BLE001
            failures.append(exc)

    def reader():
        try:
            with KVClient(host, port) as client:
                for i in range(120):
                    client.get(b"w0-%03d" % (i % 80))
                    if i % 20 == 0:
                        client.scan(b"w", b"x", limit=10)
        except Exception as exc:  # noqa: BLE001
            failures.append(exc)

    threads = [threading.Thread(target=writer, args=(tag,)) for tag in range(3)]
    threads.append(threading.Thread(target=reader))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert failures == []
    assert crashed.is_set()

    # The replica reconnected and converged on the full write set.
    final_seq = db.committed_sequence()
    assert replica.wait_until_caught_up(final_seq, timeout=20.0)
    assert replica.subscriptions >= 2
    for tag in range(3):
        for i in range(80):
            key = b"w%d-%03d" % (tag, i)
            assert replica.get(key) == SENTINEL + b"-%d-%03d" % (tag, i)

    # A reader through the normal client sees the same data.
    with KVClient(host, port) as client:
        assert client.get(b"w2-079") == SENTINEL + b"-2-079"

    replica.stop()
    proxy.close()
    server.stop()
    db.close()

    # The eavesdropper saw real traffic -- and zero plaintext WAL bytes.
    wire = proxy.bytes_captured()
    assert len(wire) > 240 * len(SENTINEL)  # the stream really went through
    assert SENTINEL not in wire
    assert b"w0-040" not in wire  # keys are encrypted too


def test_plaintext_engine_control_shows_the_tap_works():
    """Control experiment: an unencrypted engine DOES leak the sentinel,
    proving the proxy would have caught a leak in the encrypted run."""
    from repro.lsm.db import DB

    db = DB("/e2e-plain", Options(env=MemEnv(), write_buffer_size=64 * 1024))
    server = KVServer(db, ServiceConfig()).start()
    proxy = RecordingProxy(server.address)
    replica = Replica(*proxy.address, server_id="replica-1")
    replica.start()
    assert replica.wait_connected(timeout=5.0)
    db.put(b"leak-key", SENTINEL)
    assert replica.wait_until_caught_up(db.committed_sequence())
    assert replica.get(b"leak-key") == SENTINEL
    replica.stop()
    proxy.close()
    server.stop()
    db.close()
    assert SENTINEL in proxy.bytes_captured()
