"""Adversarial integrity tests: the SHIELD++ guarantees, end to end.

Every test here plays the Section-3 storage adversary against a live
database opened through ``open_shield_db`` with an AEAD scheme and checks
the promised failure mode: tampering raises ``AuthenticationError`` (never
a silently wrong value), snapshot replay raises ``RollbackError``, and
repair quarantines rather than aborts.
"""

import pytest

from repro.env.mem import MemEnv
from repro.errors import AuthenticationError, RollbackError
from repro.keys.kds import InMemoryKDS
from repro.lsm.envelope import MAX_ENVELOPE_SIZE, decode_envelope
from repro.lsm.options import Options
from repro.lsm.repair import QUARANTINE_SUFFIX, repair_db
from repro.shield import ShieldOptions, open_shield_db
from repro.integrity import MemoryTrustedCounter

_AEAD_SCHEME = "shake-etm"  # the fast AEAD; GCM/Poly1305 are covered in unit tests


def _options(env):
    # A roomy write buffer keeps each explicit flush() to exactly one SST
    # (and no surprise auto-flushes), so tests can target files precisely.
    return Options(env=env, write_buffer_size=64 * 1024, block_size=512)


def _shield(kds, counter=None, wal_buffer_size=None):
    kwargs = {"kds": kds, "scheme": _AEAD_SCHEME}
    if counter is not None:
        kwargs["trusted_counter"] = counter
    if wal_buffer_size is not None:
        kwargs["wal_buffer_size"] = wal_buffer_size
    return ShieldOptions(**kwargs)


def _flip_payload_byte(env, path, skew=0.5):
    """Flip one bit inside the encrypted payload (never the envelope)."""
    raw = bytearray(env.read_file(path))
    envelope = decode_envelope(bytes(raw[:MAX_ENVELOPE_SIZE]))
    position = envelope.header_size + int(
        (len(raw) - envelope.header_size) * skew
    )
    raw[position] ^= 0x01
    env.write_file(path, bytes(raw))
    return bytes(raw)


def _sst_paths(env, dbname):
    return sorted(
        f"{dbname}/{name}"
        for name in env.list_dir(dbname)
        if name.endswith(".sst")
    )


def test_sst_bit_flip_raises_never_lies():
    """A flipped ciphertext bit surfaces as AuthenticationError on read --
    the engine must never return a silently wrong value."""
    env = MemEnv()
    db = open_shield_db("/adv", _shield(InMemoryKDS()), _options(env))
    try:
        for i in range(200):
            db.put(b"key-%04d" % i, b"value-%04d" % i)
        db.flush()
        (sst_path,) = _sst_paths(env, "/adv")[:1]
        original = env.read_file(sst_path)
        _flip_payload_byte(env, sst_path)

        with pytest.raises(AuthenticationError):
            for i in range(200):
                got = db.get(b"key-%04d" % i)
                assert got in (None, b"value-%04d" % i)  # no wrong values

        # The failure is surfaced operationally, not just as an exception.
        health = db.health()
        assert health["state"] == "degraded"
        assert health["reason"] == "quarantined-sst"
        assert db.stats_snapshot()["integrity.quarantines"] >= 1

        # Quarantine is advisory: restoring the bytes self-heals.
        env.write_file(sst_path, original)
        assert db.get(b"key-0000") == b"value-0000"
        assert db.health()["state"] == "healthy"
    finally:
        db.close()


def test_sst_bit_flip_fails_scans_too():
    env = MemEnv()
    db = open_shield_db("/adv", _shield(InMemoryKDS()), _options(env))
    try:
        for i in range(200):
            db.put(b"key-%04d" % i, b"value-%04d" % i)
        db.flush()
        _flip_payload_byte(env, _sst_paths(env, "/adv")[0])
        with pytest.raises(AuthenticationError):
            list(db.scan(b"key-0000", b"key-9999"))
    finally:
        db.close()


def test_wal_bit_flip_fails_recovery():
    """Tampering with a complete WAL unit must fail replay loudly; it must
    not be mistaken for an honest torn tail."""
    env = MemEnv()
    kds = InMemoryKDS()
    db = open_shield_db("/adv", _shield(kds, wal_buffer_size=0), _options(env))
    for i in range(20):
        db.put(b"key-%04d" % i, b"value-%04d" % i)
    db.simulate_crash()

    wal_path = next(
        f"/adv/{name}" for name in env.list_dir("/adv") if name.endswith(".log")
    )
    _flip_payload_byte(env, wal_path, skew=0.25)
    with pytest.raises(AuthenticationError):
        open_shield_db("/adv", _shield(kds), _options(env))


def test_wal_torn_tail_still_recovers():
    """Contrast with the bit flip: an honest torn tail (truncated final
    unit) replays everything before it and opens cleanly."""
    env = MemEnv()
    kds = InMemoryKDS()
    db = open_shield_db("/adv", _shield(kds, wal_buffer_size=0), _options(env))
    for i in range(20):
        db.put(b"key-%04d" % i, b"value-%04d" % i)
    db.simulate_crash()

    wal_path = next(
        f"/adv/{name}" for name in env.list_dir("/adv") if name.endswith(".log")
    )
    raw = env.read_file(wal_path)
    env.write_file(wal_path, raw[: len(raw) - 5])  # tear the last unit
    recovered = open_shield_db("/adv", _shield(kds), _options(env))
    try:
        assert recovered.get(b"key-0000") == b"value-0000"
    finally:
        recovered.close()


def test_snapshot_replay_raises_rollback():
    """Restoring an old-but-authentic storage snapshot fails DB.open with
    RollbackError once the trusted counter has moved on."""
    env = MemEnv()
    kds = InMemoryKDS()
    counter = MemoryTrustedCounter()
    db = open_shield_db("/adv", _shield(kds, counter=counter), _options(env))
    for i in range(100):
        db.put(b"key-%04d" % i, b"old-%04d" % i)
    db.flush()
    db.close()

    snapshot = env.fork(durable_only=False)  # the adversary's stolen image
    kds_snapshot = kds.fork()

    # Life goes on: two more flush cycles, so the snapshot's root is
    # neither the counter's current root nor its one-step torn window.
    db = open_shield_db("/adv", _shield(kds, counter=counter), _options(env))
    for round_ in range(2):
        for i in range(100):
            db.put(b"key-%04d" % i, b"new-%d-%04d" % (round_, i))
        db.flush()
    db.close()

    with pytest.raises(RollbackError):
        open_shield_db(
            "/adv", _shield(kds_snapshot, counter=counter), _options(snapshot)
        )


def test_fresh_reopen_is_not_a_rollback():
    """The freshness check must not fire on an honest close/reopen."""
    env = MemEnv()
    kds = InMemoryKDS()
    counter = MemoryTrustedCounter()
    db = open_shield_db("/adv", _shield(kds, counter=counter), _options(env))
    for i in range(100):
        db.put(b"key-%04d" % i, b"value-%04d" % i)
    db.flush()
    db.close()
    reopened = open_shield_db("/adv", _shield(kds, counter=counter), _options(env))
    try:
        assert reopened.get(b"key-0000") == b"value-0000"
        assert reopened.stats_snapshot()["integrity.freshness_checks"] >= 1
    finally:
        reopened.close()


def test_repair_quarantines_tampered_sst():
    """repair_db moves an auth-failed SST aside and rebuilds from the
    rest instead of aborting the whole repair."""
    env = MemEnv()
    kds = InMemoryKDS()
    shield = _shield(kds)
    db = open_shield_db("/adv", shield, _options(env))
    for i in range(200):
        db.put(b"a-%04d" % i, b"va-%04d" % i)
    db.flush()
    for i in range(200):
        db.put(b"b-%04d" % i, b"vb-%04d" % i)
    db.flush()
    db.close()

    ssts = _sst_paths(env, "/adv")
    assert len(ssts) >= 2
    _flip_payload_byte(env, ssts[0])

    provider = shield.build_provider()
    recovered = repair_db(env, "/adv", provider=provider)
    assert recovered == len(ssts) - 1
    assert env.file_exists(ssts[0] + QUARANTINE_SUFFIX)
    assert not env.file_exists(ssts[0])

    reopened = open_shield_db("/adv", shield, _options(env))
    try:
        survivors = sum(
            reopened.get(b"a-%04d" % i) is not None for i in range(200)
        ) + sum(reopened.get(b"b-%04d" % i) is not None for i in range(200))
        assert survivors >= 200  # everything outside the tampered file
    finally:
        reopened.close()


def test_repair_reanchors_trusted_counter():
    """Running repair is the operator's attestation: the counter is
    re-anchored to the repaired set, so the next open is fresh, and the
    pre-repair image remains rejected."""
    env = MemEnv()
    kds = InMemoryKDS()
    counter = MemoryTrustedCounter()
    shield = _shield(kds, counter=counter)
    db = open_shield_db("/adv", shield, _options(env))
    for i in range(200):
        db.put(b"key-%04d" % i, b"value-%04d" % i)
    db.flush()
    for i in range(200):
        db.put(b"other-%04d" % i, b"value-%04d" % i)
    db.flush()
    db.close()
    pre_repair = env.fork(durable_only=False)
    pre_repair_kds = kds.fork()  # repair retires DEKs; the image needs its own

    ssts = _sst_paths(env, "/adv")
    _flip_payload_byte(env, ssts[0])
    repair_options = _options(env)
    repair_options.trusted_counter = counter
    repair_db(env, "/adv", provider=shield.build_provider(), options=repair_options)
    reopened = open_shield_db("/adv", shield, _options(env))
    # One more flush pushes the pre-repair root past the one-transition
    # torn-update window; the stolen image must now read as a rollback.
    reopened.put(b"post-repair", b"value")
    reopened.flush()
    reopened.close()

    with pytest.raises(RollbackError):
        open_shield_db(
            "/adv",
            _shield(pre_repair_kds, counter=counter),
            _options(pre_repair),
        )
