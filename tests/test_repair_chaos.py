"""repair.py against chaos-produced database states.

The crash matrix proves normal recovery survives single-point kills;
these tests aim repair_db at the uglier wreckage chaos leaves behind --
a WAL with a torn tail, an SST deleted out from under the MANIFEST, and
an orphaned MANIFEST from a kill mid-CURRENT-swap -- and assert repair
converges to an openable database with a clean DEK audit.
"""

import pytest

from repro.env.faulty import FaultInjectionEnv
from repro.env.mem import MemEnv
from repro.keys.kds import InMemoryKDS
from repro.lsm.options import Options
from repro.lsm.repair import repair_db
from repro.shield import ShieldOptions, open_shield_db
from repro.tools.dek_audit import audit_directory
from repro.util.syncpoint import SYNC


def _options(env):
    return Options(env=env, write_buffer_size=4 * 1024, block_size=1024,
                   wal_sync_writes=True, slowdown_delay_s=0.0)


def _shield(kds):
    return ShieldOptions(kds=kds, server_id="repair-chaos")


def _nuke_metadata(env, path):
    for name in list(env.list_dir(path)):
        if name.startswith("MANIFEST") or name == "CURRENT":
            env.delete_file(f"{path}/{name}")


def _assert_audit_clean(env, path):
    audit = audit_directory(env, path)
    assert [r["name"] for r in audit["rows"] if "error" in r] == []
    assert audit["plaintext_data_files"] == []
    assert audit["duplicate_key_nonce_pairs"] == []
    assert audit["shared_deks"] == []


def test_repair_after_torn_wal_tail():
    """A lying disk tears the WAL's last sync at crash time; repair (and
    plain recovery) must tolerate the torn tail."""
    inner = MemEnv()
    env = FaultInjectionEnv(inner)
    kds = InMemoryKDS()
    db = open_shield_db("/rc", _shield(kds), _options(env))
    for i in range(200):
        db.put(b"key-%04d" % i, b"flushed-%04d" % i)
    db.flush()
    # Post-flush writes live only in the WAL; the final sync lies.
    env.arm_torn_sync(drop_bytes=13, predicate=lambda p: p.endswith(".log"))
    for i in range(20):
        db.put(b"tail-%02d" % i, b"wal-only-%02d" % i)
    db.simulate_crash()
    env.crash_system()  # the tear comes true: WAL loses its last 13 bytes
    env.heal()

    _nuke_metadata(env, "/rc")
    provider = _shield(kds).build_provider()
    assert repair_db(env, "/rc", provider=provider) >= 1

    reopened = open_shield_db("/rc", _shield(kds), _options(env))
    try:
        for i in range(200):
            assert reopened.get(b"key-%04d" % i) == b"flushed-%04d" % i
        # The torn record (and only the torn record) may be gone; every
        # complete WAL record before it must have been replayed.
        recovered_tail = sum(
            reopened.get(b"tail-%02d" % i) is not None for i in range(20)
        )
        assert recovered_tail >= 19
        reopened.put(b"after-repair", b"ok")
        reopened.flush()
        assert reopened.get(b"after-repair") == b"ok"
    finally:
        reopened.close()
    _assert_audit_clean(env, "/rc")


def test_repair_after_sst_goes_missing():
    """Losing one SST must cost at most that SST's keys: repair rebuilds
    the MANIFEST from what is still readable instead of refusing."""
    env = MemEnv()
    kds = InMemoryKDS()
    db = open_shield_db("/rc", _shield(kds), _options(env))
    for i in range(100):
        db.put(b"a-%03d" % i, b"va-%03d" % i)
    db.flush()
    for i in range(100):
        db.put(b"b-%03d" % i, b"vb-%03d" % i)
    db.flush()
    db.close()

    ssts = sorted(n for n in env.list_dir("/rc") if n.endswith(".sst"))
    assert len(ssts) >= 2
    env.delete_file(f"/rc/{ssts[0]}")  # chaos eats the older file
    _nuke_metadata(env, "/rc")

    provider = _shield(kds).build_provider()
    recovered = repair_db(env, "/rc", provider=provider)
    assert recovered == len(ssts) - 1

    reopened = open_shield_db("/rc", _shield(kds), _options(env))
    try:
        # The surviving file's keys are all there.
        assert reopened.get(b"b-050") == b"vb-050"
        present = sum(
            reopened.get(b"a-%03d" % i) is not None for i in range(100)
        ) + sum(
            reopened.get(b"b-%03d" % i) is not None for i in range(100)
        )
        assert present >= 100
    finally:
        reopened.close()
    _assert_audit_clean(env, "/rc")


def test_repair_after_orphaned_manifest():
    """A kill right after the CURRENT swap leaves the superseded MANIFEST
    on disk.  repair must converge to exactly one live MANIFEST."""
    mem = MemEnv()
    kds = InMemoryKDS()
    db = open_shield_db("/rc", _shield(kds), _options(mem))
    for i in range(150):
        db.put(b"key-%04d" % i, b"value-%04d" % i)
    db.flush()
    db.close()

    # Reopen with a kill injected right after the CURRENT swap: the old
    # MANIFEST survives as an orphan in the crash image.
    fork = {}

    def kill():
        if "env" not in fork:
            fork["env"] = mem.fork(durable_only=False)
        raise RuntimeError("injected kill after CURRENT swap")

    SYNC.clear()
    SYNC.set_callback("manifest:after_current_swap", kill)
    SYNC.enable()
    try:
        with pytest.raises(Exception):
            open_shield_db("/rc", _shield(kds), _options(mem))
    finally:
        SYNC.clear()
    env = fork["env"]
    manifests = [n for n in env.list_dir("/rc") if n.startswith("MANIFEST")]
    assert len(manifests) >= 2  # the orphan really is there

    provider = _shield(kds).build_provider()
    assert repair_db(env, "/rc", provider=provider) >= 1
    reopened = open_shield_db("/rc", _shield(kds), _options(env))
    try:
        for i in range(0, 150, 13):
            assert reopened.get(b"key-%04d" % i) == b"value-%04d" % i
        reopened.put(b"post", b"ok")
        reopened.flush()
    finally:
        reopened.close()
    # Reopen-after-repair garbage-collects the orphaned MANIFEST.
    manifests = [n for n in env.list_dir("/rc") if n.startswith("MANIFEST")]
    assert len(manifests) == 1
    _assert_audit_clean(env, "/rc")
