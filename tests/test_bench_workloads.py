"""Smoke tests for workloads, YCSB, mixgraph, systems, and the harness."""

import pytest

from repro.bench.harness import RunResult, format_table, relative_overhead
from repro.bench.mixgraph import MixgraphSpec, preload_mixgraph, run_mixgraph
from repro.bench.systems import SYSTEMS, make_system, parse_system
from repro.bench.workloads import (
    WorkloadSpec,
    fill_random,
    fill_seq,
    preload,
    read_random,
    read_write_mix,
)
from repro.bench.ycsb import YCSBSpec, YCSB_WORKLOADS, load_ycsb, run_ycsb
from repro.errors import InvalidArgumentError
from repro.lsm.options import Options


def _tiny_options():
    return Options(write_buffer_size=16 * 1024, block_size=1024)


def _tiny_spec(**overrides):
    defaults = dict(num_ops=300, keyspace=300)
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


@pytest.mark.parametrize("system", SYSTEMS)
def test_fill_and_read_every_system(system):
    db = make_system(system, base_options=_tiny_options())
    with db:
        spec = _tiny_spec()
        result = fill_random(db, spec)
        assert result.ops == 300
        assert result.throughput > 0
        read = read_random(db, spec)
        assert read.ops == 300


def test_parse_system():
    spec = parse_system("shield+walbuf", wal_buffer=256)
    assert spec.design == "shield"
    assert spec.wal_buffer == 256
    assert parse_system("baseline").wal_buffer == 0
    with pytest.raises(InvalidArgumentError):
        parse_system("mysql")
    with pytest.raises(InvalidArgumentError):
        parse_system("shield+turbo")


def test_fill_seq_then_point_reads():
    db = make_system("baseline", base_options=_tiny_options())
    with db:
        fill_seq(db, _tiny_spec())
        assert db.get(b"0000000000000000") is not None


def test_read_write_mix_ratio_naming():
    db = make_system("baseline", base_options=_tiny_options())
    with db:
        preload(db, _tiny_spec(num_ops=100, keyspace=100))
        result = read_write_mix(db, _tiny_spec(num_ops=100, keyspace=100,
                                               read_fraction=0.9))
        assert result.name == "rw-90r"
        assert result.ops == 100


def test_read_while_writing():
    from repro.bench.workloads import read_while_writing

    db = make_system("baseline", base_options=_tiny_options())
    with db:
        spec = _tiny_spec(num_ops=200, keyspace=200)
        preload(db, spec)
        result = read_while_writing(db, spec)
        assert result.ops == 200
        assert result.extra["background_writes"] > 0


def test_mixgraph_runs_and_counts_ops():
    db = make_system("baseline", base_options=_tiny_options())
    with db:
        spec = MixgraphSpec(num_ops=400, keyspace=400)
        preload_mixgraph(db, spec)
        result = run_mixgraph(db, spec)
        total = result.extra["gets"] + result.extra["puts"] + result.extra["seeks"]
        assert total == 400
        # GET-heavy mix.
        assert result.extra["gets"] > result.extra["puts"] > 0


@pytest.mark.parametrize("workload", sorted(YCSB_WORKLOADS))
def test_ycsb_workloads_run(workload):
    db = make_system("baseline", base_options=_tiny_options())
    with db:
        spec = YCSBSpec(record_count=200, operation_count=150, value_size=128)
        load_ycsb(db, spec)
        result = run_ycsb(db, workload, spec)
        assert result.ops == 150
        counts = {k: v for k, v in result.extra.items() if v}
        assert counts  # something ran
        if workload == "C":
            assert set(counts) == {"read"}
        if workload == "E":
            assert result.extra["scan"] > 0


def test_relative_overhead_and_table():
    base = RunResult(name="baseline", ops=1000, elapsed_s=1.0)
    slow = RunResult(name="shield", ops=1000, elapsed_s=1.25)
    assert relative_overhead(base, slow) == pytest.approx(20.0)
    table = format_table("demo", [base, slow], baseline_name="baseline")
    assert "baseline" in table
    assert "+20.0%" in table
    assert "== demo ==" in table


def test_format_table_extra_columns():
    result = RunResult(name="x", ops=10, elapsed_s=0.1, extra={"gets": 7})
    table = format_table("t", [result], extra_columns=["gets"])
    assert "gets" in table
    assert "7" in table
