"""Tests for WAL-shipping replication: resume, lag, revocation, snapshot."""

import threading
import time

import pytest

from repro.env.mem import MemEnv
from repro.errors import AuthorizationError
from repro.keys.client import KeyClient
from repro.keys.kds import InMemoryKDS, SimulatedKDS
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.write_batch import WriteBatch
from repro.service.replica import Replica, ReplicaState, ReplicationSource
from repro.service.server import KVServer, ServiceConfig
from repro.shield import ShieldOptions, open_shield_db


def _plain_db(path="/repl"):
    return DB(path, Options(env=MemEnv(), write_buffer_size=64 * 1024))


def _shield_db(kds, path="/repl-shield", server_id="primary"):
    return open_shield_db(
        path, ShieldOptions(kds=kds, server_id=server_id),
        Options(env=MemEnv(), write_buffer_size=64 * 1024),
    )


# -- engine hook (the WAL tail) ---------------------------------------------


def test_commit_listener_sees_every_batch_in_order():
    db = _plain_db()
    seen = []
    db.add_commit_listener(lambda f, l, p: seen.append((f, l, p)))
    db.put(b"a", b"1")
    batch = WriteBatch()
    batch.put(b"b", b"2")
    batch.put(b"c", b"3")
    batch.delete(b"a")
    db.write(batch)
    assert [(f, l) for f, l, __ in seen] == [(1, 1), (2, 4)]
    # The payload is the exact serialized batch: replayable.
    first_seq, rebuilt = WriteBatch.deserialize(seen[1][2])
    assert first_seq == 2
    assert list(rebuilt.items()) == list(batch.items())
    assert db.committed_sequence() == 4
    db.close()


def test_commit_listener_removal_and_error_isolation():
    db = _plain_db()
    calls = []

    def bad_listener(f, l, p):
        raise RuntimeError("listener bug")

    db.add_commit_listener(bad_listener)
    db.add_commit_listener(lambda f, l, p: calls.append(f))
    db.put(b"k", b"v")  # the bad listener must not poison the write
    assert db.get(b"k") == b"v"
    assert calls == [1]
    assert db.stats.counter("db.commit_listener_errors").value == 1
    db.remove_commit_listener(bad_listener)
    db.put(b"k2", b"v2")
    assert db.stats.counter("db.commit_listener_errors").value == 1
    db.close()


def test_replication_source_retention_and_waiting():
    db = _plain_db()
    source = ReplicationSource(db, max_retained_records=2)
    assert source.earliest_sequence == 0
    for i in range(4):
        db.put(b"k-%d" % i, b"v")
    # Only the last two single-op records are retained.
    assert [f for f, __, ___ in source.records_after(0)] == [3, 4]
    assert source.earliest_sequence == 2  # resumes below this need a snapshot
    assert source.records_after(3) == source.records_after(0)[1:]
    assert source.wait_records_after(4, timeout=0.05) == []
    source.close()
    assert source.closed
    db.close()


# -- resume and convergence --------------------------------------------------


def test_reconnect_resumes_from_carried_state():
    kds = InMemoryKDS()
    db = _shield_db(kds)
    with KVServer(db, ServiceConfig()) as server:
        host, port = server.address
        state = ReplicaState()
        first = Replica(host, port, server_id="replica-1",
                        key_client=KeyClient(kds, "replica-1"), state=state)
        first.start()
        for i in range(20):
            db.put(b"r-%03d" % i, b"v1-%03d" % i)
        assert first.wait_until_caught_up(db.committed_sequence())
        first.stop()
        applied_before = state.last_applied
        assert applied_before == 20

        # Writes while the replica is down...
        for i in range(20, 40):
            db.put(b"r-%03d" % i, b"v1-%03d" % i)

        # ...a restarted replica resumes from the carried state, not zero.
        second = Replica(host, port, server_id="replica-1",
                         key_client=KeyClient(kds, "replica-1"), state=state)
        second.start()
        assert second.wait_until_caught_up(db.committed_sequence())
        assert second.last_resume_sequence == applied_before
        assert second.snapshots_received == 0  # tail covered the gap
        for i in range(40):
            assert state.get(b"r-%03d" % i) == b"v1-%03d" % i
        second.stop()
    db.close()


def test_lagging_replica_converges_under_write_load():
    kds = InMemoryKDS()
    db = _shield_db(kds)
    with KVServer(db, ServiceConfig()) as server:
        host, port = server.address
        replica = Replica(host, port, server_id="replica-1",
                          key_client=KeyClient(kds, "replica-1"))
        replica.start()

        def load(start):
            for i in range(start, start + 150):
                db.put(b"load-%04d" % i, b"val-%04d" % i)

        writers = [threading.Thread(target=load, args=(t * 150,))
                   for t in range(3)]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join()
        final_seq = db.committed_sequence()
        assert replica.wait_until_caught_up(final_seq, timeout=15.0)
        for i in range(450):
            assert replica.get(b"load-%04d" % i) == b"val-%04d" % i
        # Deletes replicate too.
        db.delete(b"load-0000")
        assert replica.wait_until_caught_up(db.committed_sequence())
        assert replica.get(b"load-0000") is None
        replica.stop()
    db.close()


def test_crash_and_reconnect_mid_stream():
    kds = InMemoryKDS()
    db = _shield_db(kds)
    with KVServer(db, ServiceConfig()) as server:
        host, port = server.address
        replica = Replica(host, port, server_id="replica-1",
                          key_client=KeyClient(kds, "replica-1"),
                          reconnect_backoff_s=0.01)
        replica.start()
        assert replica.wait_connected(timeout=5.0)
        for i in range(50):
            db.put(b"c-%03d" % i, b"v")
            if i == 25:
                replica.simulate_crash()
        assert replica.wait_until_caught_up(db.committed_sequence(), timeout=15.0)
        assert replica.subscriptions >= 2  # it really did resubscribe
        for i in range(50):
            assert replica.get(b"c-%03d" % i) == b"v"
        replica.stop()
    db.close()


# -- snapshot catch-up -------------------------------------------------------


def test_late_attached_source_ships_snapshot_first():
    kds = InMemoryKDS()
    db = _shield_db(kds)
    # History written before the server (and its source) exists: the
    # retained log cannot cover a from-zero resume.
    for i in range(120):
        db.put(b"s-%04d" % i, b"snap-%04d" % i)
    db.delete(b"s-0007")
    with KVServer(db, ServiceConfig(repl_chunk_entries=32)) as server:
        host, port = server.address
        replica = Replica(host, port, server_id="replica-1",
                          key_client=KeyClient(kds, "replica-1"))
        replica.start()
        assert replica.wait_until_caught_up(db.committed_sequence())
        assert replica.snapshots_received >= 1
        assert server.stats.counter("service.repl_snapshots").value == 1
        assert replica.get(b"s-0007") is None  # tombstone not resurrected
        for i in range(120):
            if i != 7:
                assert replica.get(b"s-%04d" % i) == b"snap-%04d" % i
        # Live tailing continues after the snapshot.
        db.put(b"after-snap", b"live")
        assert replica.wait_until_caught_up(db.committed_sequence())
        assert replica.get(b"after-snap") == b"live"
        replica.stop()
    db.close()


def test_snapshot_catchup_resets_carried_state():
    """A snapshot must replace carried-over state, not layer on top of it.

    Keys deleted while the replica was down are simply absent from the
    snapshot; if the old entries (at higher real sequences than the
    snapshot's synthetic ones) survived, they would stay newest-visible
    forever -- resurrecting deletes and shadowing overwrites.
    """
    kds = InMemoryKDS()
    db = _shield_db(kds)
    state = ReplicaState()
    with KVServer(db, ServiceConfig()) as server:
        host, port = server.address
        first = Replica(host, port, server_id="replica-1",
                        key_client=KeyClient(kds, "replica-1"), state=state)
        first.start()
        for i in range(10):
            db.put(b"sn-%02d" % i, b"v1-%02d" % i)
        assert first.wait_until_caught_up(db.committed_sequence())
        first.stop()
    # While the replica is down: a delete and an overwrite, and the
    # server (with its retained log) goes away entirely.
    db.delete(b"sn-03")
    db.put(b"sn-04", b"v2-04")
    with KVServer(db, ServiceConfig()) as server:
        # The fresh source's earliest_sequence is past the replica's
        # resume point, so catch-up takes the snapshot path -- onto a
        # replica that still carries its pre-crash state.
        second = Replica(*server.address, server_id="replica-1",
                         key_client=KeyClient(kds, "replica-1"), state=state)
        second.start()
        assert second.wait_until_caught_up(db.committed_sequence())
        assert second.snapshots_received >= 1
        assert second.get(b"sn-03") is None        # delete not resurrected
        assert second.get(b"sn-04") == b"v2-04"    # overwrite not shadowed
        pairs = second.scan(b"sn-", b"sn-\xff")
        assert pairs == [(b"sn-%02d" % i,
                          b"v2-04" if i == 4 else b"v1-%02d" % i)
                         for i in range(10) if i != 3]
        # Live tailing still works after the reset.
        db.put(b"sn-live", b"v")
        assert second.wait_until_caught_up(db.committed_sequence())
        assert second.get(b"sn-live") == b"v"
        second.stop()
    db.close()


def test_replication_through_require_auth_server():
    """OP_REPL_SUBSCRIBE carries its own KDS-checked server ID, so a
    replica needs no separate AUTH exchange even when the server demands
    one from regular clients."""
    kds = SimulatedKDS(request_latency_s=0.0)
    kds.authorize_server("primary")
    kds.authorize_server("replica-1")
    db = _shield_db(kds)
    with KVServer(db, ServiceConfig(require_auth=True)) as server:
        replica = Replica(*server.address, server_id="replica-1",
                          key_client=KeyClient(kds, "replica-1"))
        replica.start()
        db.put(b"k", b"v")
        assert replica.wait_until_caught_up(db.committed_sequence())
        assert replica.get(b"k") == b"v"
        replica.stop()
        # The exemption is not a bypass: an unauthorized replica is still
        # refused by the KDS policy check inside the subscription.
        evil = Replica(*server.address, server_id="replica-evil",
                       key_client=KeyClient(kds, "replica-evil"))
        evil.start()
        assert evil.join(timeout=5.0)
        assert isinstance(evil.last_error, AuthorizationError)
        evil.stop()
    db.close()


def test_replica_scan_merges_applied_state():
    kds = InMemoryKDS()
    db = _shield_db(kds)
    with KVServer(db, ServiceConfig()) as server:
        replica = Replica(*server.address, server_id="replica-1",
                          key_client=KeyClient(kds, "replica-1"))
        replica.start()
        for i in range(10):
            db.put(b"scan-%02d" % i, b"v%02d" % i)
        db.delete(b"scan-03")
        assert replica.wait_until_caught_up(db.committed_sequence())
        pairs = replica.scan(b"scan-", b"scan-\xff")
        assert pairs == [(b"scan-%02d" % i, b"v%02d" % i)
                         for i in range(10) if i != 3]
        assert replica.scan(b"scan-", limit=2) == pairs[:2]
        replica.stop()
    db.close()


# -- authorization / revocation ---------------------------------------------


def test_revoked_replica_is_refused_wal_frames():
    kds = SimulatedKDS(request_latency_s=0.0)
    kds.authorize_server("primary")
    kds.authorize_server("replica-good")
    db = _shield_db(kds)
    with KVServer(db, ServiceConfig()) as server:
        host, port = server.address
        for i in range(10):
            db.put(b"sec-%d" % i, b"classified")

        revoked = Replica(host, port, server_id="replica-evil",
                          key_client=KeyClient(kds, "replica-evil"))
        revoked.start()
        assert revoked.join(timeout=5.0)  # terminal: no reconnect loop
        assert isinstance(revoked.last_error, AuthorizationError)
        assert revoked.frames_received == 0
        assert revoked.snapshots_received == 0
        assert len(revoked.state) == 0
        assert not revoked.connected
        revoked.stop()

        good = Replica(host, port, server_id="replica-good",
                       key_client=KeyClient(kds, "replica-good"))
        good.start()
        assert good.wait_until_caught_up(db.committed_sequence())
        assert good.get(b"sec-3") == b"classified"
        good.stop()
    db.close()


def test_revocation_after_the_fact_blocks_resubscription():
    kds = SimulatedKDS(request_latency_s=0.0)
    kds.authorize_server("primary")
    kds.authorize_server("replica-1")
    db = _shield_db(kds)
    with KVServer(db, ServiceConfig()) as server:
        replica = Replica(*server.address, server_id="replica-1",
                          key_client=KeyClient(kds, "replica-1"),
                          reconnect_backoff_s=0.01)
        replica.start()
        db.put(b"k", b"v")
        assert replica.wait_until_caught_up(db.committed_sequence())
        frames_before = replica.frames_received

        kds.revoke_server("replica-1")
        replica.simulate_crash()  # force a resubscription attempt
        assert replica.join(timeout=5.0)  # refused -> loop terminates
        assert isinstance(replica.last_error, AuthorizationError)
        db.put(b"post-revoke", b"v2")
        time.sleep(0.1)
        assert replica.frames_received == frames_before
        assert replica.get(b"post-revoke") is None
        replica.stop()
    db.close()


def test_sharded_db_cannot_be_subscribed():
    from repro.dist.sharding import ShardedDB
    from repro.errors import InvalidArgumentError

    env = MemEnv()
    cluster = ShardedDB(
        "/repl-cluster", 2,
        lambda i, path: DB(path, Options(env=env, write_buffer_size=16 * 1024)),
    )
    with KVServer(cluster, ServiceConfig()) as server:
        replica = Replica(*server.address, server_id="r", auto_reconnect=False)
        replica.start()
        assert replica.join(timeout=5.0)
        assert isinstance(replica.last_error, InvalidArgumentError)
    cluster.close()
