"""Derived-signal layer (repro.obs.signals)."""

from __future__ import annotations

from repro.env.mem import MemEnv
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.obs.costs import CostBreakdown
from repro.obs.signals import SIGNAL_KEYS, SignalEngine
from repro.util.clock import VirtualClock
from repro.util.stats import StatsRegistry


class _FakeKeyClient:
    def __init__(self):
        self.stats = StatsRegistry()


class _FakeProvider:
    def __init__(self, key_client=None):
        self.key_client = key_client


class _FakeDB:
    """Just enough surface for SignalEngine, with hand-set raw metrics."""

    def __init__(self, options=None, levels=None, key_client=None):
        self.options = options or Options()
        self.stats = StatsRegistry()
        self.clock = VirtualClock()
        self.provider = _FakeProvider(key_client)
        self._levels = levels or [0] * self.options.num_levels
        self._bg = CostBreakdown()

    def level_sizes(self):
        return list(self._levels)

    def num_files_at_level(self, level):
        return self._l0_files if level == 0 else 0

    _l0_files = 0

    def background_costs(self):
        return self._bg


def test_signal_keys_always_present():
    db = _FakeDB()
    signals = SignalEngine(db, time_fn=db.clock.now).sample()
    for key in SIGNAL_KEYS:
        assert key in signals
    assert signals["kds_p95_s"] == 0.0  # no key client


def test_write_amp_from_counter_deltas():
    db = _FakeDB()
    engine = SignalEngine(db, time_fn=db.clock.now)
    engine.sample()  # establish the baseline
    db.stats.counter("db.user_write_bytes").add(1000)
    db.stats.counter("db.flush_bytes").add(1000)
    db.stats.counter("db.compaction_bytes_written").add(3000)
    db.clock.advance(10.0)
    signals = engine.sample()
    assert signals["write_amp"] == 4.0
    assert signals["write_bytes_per_s"] == 100.0
    assert signals["interval_s"] == 10.0
    # A quiet interval reports the no-traffic defaults, not stale ratios.
    db.clock.advance(10.0)
    signals = engine.sample()
    assert signals["write_amp"] == 1.0
    assert signals["write_bytes_per_s"] == 0.0


def test_read_amp_probes_per_get():
    db = _FakeDB()
    engine = SignalEngine(db, time_fn=db.clock.now)
    engine.sample()
    db.stats.counter("db.gets").add(100)
    db.stats.counter("db.get_sst_probes").add(250)
    db.clock.advance(1.0)
    assert engine.sample()["read_amp"] == 2.5


def test_space_amp_total_over_bottommost():
    db = _FakeDB(levels=[500, 0, 1000, 0, 0, 0, 0])
    engine = SignalEngine(db, time_fn=db.clock.now)
    assert engine.sample()["space_amp"] == 1.5
    db._levels = [0] * 7
    assert engine.sample()["space_amp"] == 1.0  # empty tree


def test_level_debt():
    options = Options(
        max_bytes_for_level_base=1000,
        fanout=10,
        level0_file_num_compaction_trigger=4,
    )
    db = _FakeDB(options=options, levels=[800, 1500, 5000, 0, 0, 0, 0])
    engine = SignalEngine(db, time_fn=db.clock.now)
    signals = engine.sample()
    # L0 under its file trigger: no debt even with bytes present.
    assert signals["level_debt_bytes"][0] == 0
    assert signals["level_debt_bytes"][1] == 500     # over the 1000 target
    assert signals["level_debt_bytes"][2] == 0       # under the 10000 target
    assert signals["compaction_debt_bytes"] == 500
    db._l0_files = 4
    signals = engine.sample()
    assert signals["level_debt_bytes"][0] == 800     # all of L0 must move
    assert signals["compaction_debt_bytes"] == 1300


def test_kds_p95_from_keyclient_window():
    key_client = _FakeKeyClient()
    hist = key_client.stats.histogram("keyclient.kds_s")
    for __ in range(100):
        hist.record(0.002)
    db = _FakeDB(key_client=key_client)
    signals = SignalEngine(db, time_fn=db.clock.now).sample()
    assert signals["kds_count"] == 100
    assert 0.0018 < signals["kds_p95_s"] < 0.0025


def test_encrypt_seconds_per_compaction_byte():
    db = _FakeDB()
    engine = SignalEngine(db, time_fn=db.clock.now)
    engine.sample()
    db._bg.add("compaction", "encrypt", 2.0, nbytes=100)
    db._bg.add("compaction", "encrypt_init", 1.0)
    db._bg.add("flush", "encrypt", 99.0)  # flush work must not leak in
    db.stats.counter("db.compaction_bytes_written").add(1000)
    db.clock.advance(1.0)
    assert engine.sample()["encrypt_s_per_compaction_byte"] == 3.0 / 1000
    # Delta semantics: no new work, no new signal.
    db.clock.advance(1.0)
    assert engine.sample()["encrypt_s_per_compaction_byte"] == 0.0


def test_stall_seconds_windowed():
    db = _FakeDB()
    db.stats.histogram("db.stall_seconds").record(0.5)
    db.stats.histogram("db.stall_seconds").record(0.25)
    signals = SignalEngine(db, time_fn=db.clock.now).sample()
    assert signals["stall_seconds"] == 0.75
    assert signals["stall_count"] == 2


def test_live_db_exposes_signal_engine():
    options = Options(env=MemEnv(), write_buffer_size=4 * 1024)
    with DB("/sig", options) as db:
        engine = db.signals
        engine.sample()
        for i in range(2000):
            db.put(b"key-%05d" % i, b"v" * 64)
        db.compact_range()
        for i in range(0, 2000, 50):
            db.get(b"key-%05d" % i)
        signals = engine.sample()
        # User bytes were really persisted (amp >= 1) and gets probed SSTs.
        assert signals["write_amp"] >= 1.0
        assert signals["read_amp"] > 0.0
        assert signals["space_amp"] >= 1.0
        assert db.stats.counter("db.user_write_bytes").value > 2000 * 64
        assert engine.latest() == signals


# ----------------------------------------------------------------------
# Cross-shard merges.
# ----------------------------------------------------------------------

from repro.obs.controller import merge_controller_states  # noqa: E402
from repro.obs.signals import merge_signals  # noqa: E402


def test_merge_signals_sums_volumes_takes_worst_amps():
    a = {
        "stall_seconds": 1.0, "write_amp": 2.0, "read_amp": 1.0,
        "write_bytes_per_s": 100.0, "level_debt_bytes": [10, 0],
        "kds_p95_s": 0.001,
    }
    b = {
        "stall_seconds": 0.5, "write_amp": 6.0, "read_amp": 3.0,
        "write_bytes_per_s": 50.0, "level_debt_bytes": [5, 7, 9],
        "kds_p95_s": 0.004,
    }
    merged = merge_signals([a, b])
    assert merged["stall_seconds"] == 1.5          # summed
    assert merged["write_bytes_per_s"] == 150.0    # summed
    assert merged["write_amp"] == 6.0              # worst shard
    assert merged["kds_p95_s"] == 0.004            # worst shard
    assert merged["level_debt_bytes"] == [15, 7, 9]  # element-wise
    assert merge_signals([]) == {}
    assert merge_signals([{}, a])["write_amp"] == 2.0


def test_merge_controller_states():
    states = [
        {"policy": "leveled", "offload": True, "ticks": 10,
         "policy_changes": 1, "offload_changes": 1, "frozen_ticks": 0},
        {"policy": "universal", "offload": False, "ticks": 20,
         "policy_changes": 2, "offload_changes": 0, "frozen_ticks": 3},
        {"policy": "universal", "offload": False, "ticks": 5,
         "policy_changes": 0, "offload_changes": 0, "frozen_ticks": 0},
    ]
    merged = merge_controller_states(states)
    assert merged["shards"] == 3
    assert merged["policies"] == {"leveled": 1, "universal": 2}
    assert merged["offload_shards"] == 1
    assert merged["ticks"] == 35
    assert merged["policy_changes"] == 3
    assert merged["frozen_ticks"] == 3
    assert merge_controller_states([]) == {}


def test_sharded_db_obs_dict_merges_shards():
    from repro.dist.sharding import ShardedDB

    def make_shard(index, path):
        # adaptive pinned off so the no-controller branch is covered even
        # when the suite runs under REPRO_ADAPTIVE=1.
        return DB(
            path,
            Options(
                env=MemEnv(),
                write_buffer_size=8 * 1024,
                adaptive_compaction=False,
            ),
        )

    with ShardedDB("/obs-shards", 3, make_shard) as sharded:
        for i in range(600):
            sharded.put(b"key-%05d" % i, b"v" * 64)
        sharded.flush()
        for i in range(0, 600, 7):
            sharded.get(b"key-%05d" % i)
        obs = sharded.obs_dict()
        signals = obs["signals"]
        assert signals["write_bytes_per_s"] >= 0.0
        # Work is additive across the three shards' engines.
        total = sum(
            shard.stats.counter("db.user_write_bytes").value
            for shard in sharded.shards
        )
        assert total > 600 * 64
        assert "controller" not in obs  # adaptive off
