"""Tests for shard-per-core serving: MultiProcessKVServer + ShardedKVClient.

The forked workers are real processes, so everything here exercises the
actual fork/route/gather machinery: the factories below run *inside* the
child after the fork (closures are inherited by fork, nothing is pickled).
"""

import os
import signal
import socket
import time

import pytest

from repro.dist.sharding import shard_for_key
from repro.env.local import LocalEnv
from repro.env.mem import MemEnv
from repro.errors import AuthorizationError, ServiceError
from repro.keys.kds import InMemoryKDS, SimulatedKDS
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.write_batch import WriteBatch
from repro.service import protocol
from repro.service.client import KVClient, ShardedKVClient
from repro.service.protocol import Message
from repro.service.server import KVServer, ServiceConfig
from repro.service.workers import FrameBuffer, MultiProcessKVServer
from repro.shield import ShieldOptions, open_shield_db


def _mem_factory(**options):
    """Each worker builds a private MemEnv after the fork: shared-nothing."""

    def make_shard(index, path):
        opts = dict(options)
        opts.setdefault("write_buffer_size", 64 * 1024)
        return DB(path, Options(env=MemEnv(), **opts))

    return make_shard


def _local_factory(**options):
    """Durable shards: a respawned worker recovers from its shard dir."""

    def make_shard(index, path):
        env = LocalEnv()
        env.mkdirs(path)
        opts = dict(options)
        opts.setdefault("write_buffer_size", 16 * 1024)
        opts.setdefault("wal_sync_writes", True)
        return DB(path, Options(env=env, **opts))

    return make_shard


def _retrying_client(server, **kwargs):
    kwargs.setdefault("max_retries", 12)
    kwargs.setdefault("backoff_base_s", 0.005)
    kwargs.setdefault("backoff_max_s", 0.1)
    kwargs.setdefault("timeout_s", 5.0)
    return KVClient(*server.address, **kwargs)


# -- basic operation routing -------------------------------------------------


def test_multiprocess_roundtrip_all_operations(tmp_path):
    base = str(tmp_path / "mp")
    with MultiProcessKVServer(base, 3, _mem_factory()) as server:
        assert len(server.worker_pids) == 3
        assert all(server.worker_pids)
        with _retrying_client(server) as client:
            client.ping()
            for i in range(30):
                client.put(b"key-%03d" % i, b"val-%03d" % i)
            for i in range(30):
                assert client.get(b"key-%03d" % i) == b"val-%03d" % i
            assert client.get(b"missing") is None
            client.delete(b"key-000")
            assert client.get(b"key-000") is None

            client.flush()
            client.compact_range()
            assert client.get(b"key-007") == b"val-007"

            health = client.health()
            assert health["state"] == "healthy"
            assert client.committed_sequence() >= 30


def test_merged_stats_shape(tmp_path):
    base = str(tmp_path / "mp")
    with MultiProcessKVServer(base, 3, _mem_factory()) as server:
        with _retrying_client(server) as client:
            for i in range(12):
                client.put(b"s-%d" % i, b"v")
            stats = client.stats()
    assert set(stats["workers"]) == {"0", "1", "2"}
    for shard in stats["workers"].values():
        assert shard["health"]["state"] == "healthy"
    assert stats["health"]["state"] == "healthy"
    assert stats["committed_sequence"] == sum(
        shard["committed_sequence"] for shard in stats["workers"].values()
    )
    # repro-stats reads these sections; the front-end adds per-worker gauges.
    assert "engine" in stats and "crypto" in stats and "server" in stats
    for idx in range(3):
        assert stats["server"][f"service.worker_generation.{idx}"] == 1


def test_scatter_gather_scan_matches_single_db(tmp_path):
    """A cross-shard scan must be indistinguishable from one engine."""
    reference = DB("/ref", Options(env=MemEnv(), write_buffer_size=64 * 1024))
    base = str(tmp_path / "mp")
    with MultiProcessKVServer(base, 4, _mem_factory()) as server:
        with _retrying_client(server) as client:
            for i in range(80):
                key, value = b"k-%04d" % (i * 7 % 80), b"v-%04d" % i
                client.put(key, value)
                reference.put(key, value)
            for start, end, limit in [
                (b"", None, None),
                (b"", None, 10),
                (b"k-0010", b"k-0060", None),
                (b"k-0010", b"k-0060", 7),
                (b"zzz", None, 5),
            ]:
                assert client.scan(start, end, limit=limit) == reference.scan(
                    start, end, limit=limit
                ), (start, end, limit)
    reference.close()


def test_write_batch_splits_across_shards(tmp_path):
    base = str(tmp_path / "mp")
    with MultiProcessKVServer(base, 3, _mem_factory()) as server:
        with _retrying_client(server) as client:
            batch = WriteBatch()
            for i in range(24):
                batch.put(b"b-%03d" % i, b"v-%03d" % i)
            batch.delete(b"b-003")
            client.write(batch)
            # The batch really fanned out to more than one worker.
            touched = {shard_for_key(b"b-%03d" % i, 3) for i in range(24)}
            assert len(touched) > 1
            for i in range(24):
                expect = None if i == 3 else b"v-%03d" % i
                assert client.get(b"b-%03d" % i) == expect

            empty = WriteBatch()
            client.write(empty)  # no-op, not an error


# -- crash handling ----------------------------------------------------------


def test_worker_crash_is_retriable_and_respawns(tmp_path):
    base = str(tmp_path / "mp")
    server = MultiProcessKVServer(
        base, 3, _local_factory(), ServiceConfig(port=0, drain_timeout_s=2.0)
    )
    server.start()
    try:
        with _retrying_client(server) as client:
            for i in range(30):
                client.put(b"c-%03d" % i, b"v-%03d" % i)
            victim = server.worker_pids[0]
            os.kill(victim, signal.SIGKILL)
            # The client sees retriable BUSY while the worker respawns; the
            # synced WAL means every acked write survives the kill.
            for i in range(30):
                assert client.get(b"c-%03d" % i) == b"v-%03d" % i
            client.put(b"after-crash", b"ok")
            assert client.get(b"after-crash") == b"ok"

            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if all(server.worker_pids):
                    break
                time.sleep(0.02)
            assert all(server.worker_pids)
            assert server.worker_pids[0] != victim

            stats = client.stats()
            assert stats["server"]["service.worker_crashes"] >= 1
            assert stats["server"]["service.worker_respawns"] >= 1
            assert stats["server"]["service.worker_generation.0"] >= 2
    finally:
        server.stop()


def test_graceful_stop_reaps_every_worker(tmp_path):
    base = str(tmp_path / "mp")
    server = MultiProcessKVServer(base, 2, _mem_factory())
    server.start()
    pids = list(server.worker_pids)
    assert all(pids)
    server.stop()
    assert server.worker_pids == [None, None]
    for pid in pids:  # reaped: not our children any more, no zombies
        with pytest.raises(ChildProcessError):
            os.waitpid(pid, os.WNOHANG)


# -- backpressure ------------------------------------------------------------


def test_busy_backpressure_per_worker_queue(tmp_path):
    """Pipelined writes beyond one worker's queue depth get RESP_BUSY."""

    def slow_factory(index, path):
        db = DB(path, Options(env=MemEnv(), write_buffer_size=64 * 1024))

        class _SlowDB:
            def put(self, key, value, opts=None):
                time.sleep(0.15)
                return db.put(key, value, opts)

            def __getattr__(self, name):
                return getattr(db, name)

        return _SlowDB()

    base = str(tmp_path / "mp")
    config = ServiceConfig(port=0, max_queue_depth=2, drain_timeout_s=1.0)
    with MultiProcessKVServer(base, 1, slow_factory, config) as server:
        sock = socket.create_connection(server.address, timeout=10.0)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            blob = b"".join(
                protocol.encode_frame(Message(
                    protocol.OP_PUT, rid,
                    protocol.encode_put(b"slow-%d" % rid, b"v"),
                ))
                for rid in range(1, 11)
            )
            sock.sendall(blob)
            opcodes = []
            for _ in range(10):
                msg = protocol.read_message(sock)
                opcodes.append(msg.opcode)
            assert opcodes.count(protocol.RESP_BUSY) >= 1
            assert opcodes.count(protocol.RESP_OK) >= 1
            assert len(opcodes) == 10  # every request was answered
        finally:
            sock.close()
        # BUSY is retriable: the client-side backoff absorbs it.
        with _retrying_client(server, deadline_s=20.0) as client:
            client.put(b"retried", b"ok")
            assert client.get(b"retried") == b"ok"
            assert client.stats()["server"]["service.busy_rejections"] >= 1


# -- auth and protocol edges -------------------------------------------------


def test_require_auth_gates_operations(tmp_path):
    kds = SimulatedKDS(request_latency_s=0.0)
    kds.authorize_server("good-client")
    config = ServiceConfig(port=0, require_auth=True, kds=kds)
    base = str(tmp_path / "mp")
    with MultiProcessKVServer(base, 2, _mem_factory(), config) as server:
        with pytest.raises(AuthorizationError):
            KVClient(*server.address, server_id="impostor",
                     max_retries=0).ping()
        with KVClient(*server.address, server_id="good-client") as client:
            client.put(b"k", b"v")
            assert client.get(b"k") == b"v"
        # No AUTH at all is also rejected for non-AUTH ops.
        sock = socket.create_connection(server.address, timeout=5.0)
        try:
            protocol.send_message(sock, Message(
                protocol.OP_GET, 1, protocol.encode_key(b"k")
            ))
            assert protocol.read_message(sock).opcode == protocol.RESP_ERROR
        finally:
            sock.close()


def test_replication_subscribe_is_rejected(tmp_path):
    base = str(tmp_path / "mp")
    with MultiProcessKVServer(base, 2, _mem_factory()) as server:
        sock = socket.create_connection(server.address, timeout=5.0)
        try:
            protocol.send_message(sock, Message(
                protocol.OP_REPL_SUBSCRIBE, 1,
                protocol.encode_repl_subscribe("replica-1", 0),
            ))
            resp = protocol.read_message(sock)
            assert resp.opcode == protocol.RESP_ERROR
            with pytest.raises(Exception, match="per-shard"):
                raise protocol.decode_error(resp.payload)
        finally:
            sock.close()


def test_frame_buffer_reassembles_split_frames():
    frames = b"".join(
        protocol.encode_frame(Message(protocol.OP_PING, rid, b""))
        for rid in range(1, 4)
    )
    buf = FrameBuffer()
    seen = []
    for i in range(0, len(frames), 3):  # drip-feed 3 bytes at a time
        buf.feed(frames[i:i + 3])
        seen.extend(msg.request_id for msg in buf.messages())
    assert seen == [1, 2, 3]


# -- encrypted shards --------------------------------------------------------


def test_shield_multiprocess_smoke(tmp_path):
    kds = InMemoryKDS()

    def make_shard(index, path):
        env = LocalEnv()
        env.mkdirs(path)
        shield = ShieldOptions(kds=kds, server_id=f"test-shard-{index}")
        return open_shield_db(
            path, shield, Options(env=env, write_buffer_size=16 * 1024)
        )

    base = str(tmp_path / "mp-shield")
    with MultiProcessKVServer(base, 2, make_shard) as server:
        with _retrying_client(server) as client:
            for i in range(20):
                client.put(b"enc-%02d" % i, b"secret-%02d" % i)
            client.flush()
            for i in range(20):
                assert client.get(b"enc-%02d" % i) == b"secret-%02d" % i
            stats = client.stats()
            assert stats["crypto"].get("crypto.bytes", 0) > 0
            assert stats["health"]["state"] == "healthy"


# -- ShardedKVClient ---------------------------------------------------------


def _start_servers(n):
    """n independent single-shard KVServers (client-side sharding)."""
    backends = []
    for i in range(n):
        db = DB(f"/cskv-{i}", Options(env=MemEnv(), write_buffer_size=64 * 1024))
        server = KVServer(db, ServiceConfig(port=0))
        server.start()
        backends.append((db, server))
    return backends


def _stop_servers(backends):
    for db, server in backends:
        server.stop()
        db.close()


def test_sharded_client_fixed_routing():
    backends = _start_servers(3)
    try:
        endpoints = [server.address for _, server in backends]
        with ShardedKVClient(endpoints) as client:
            assert client.num_shards == 3
            for i in range(40):
                client.put(b"f-%03d" % i, b"v-%03d" % i)
            for i in range(40):
                assert client.get(b"f-%03d" % i) == b"v-%03d" % i
            client.delete(b"f-000")
            assert client.get(b"f-000") is None

            # Keys really land on the shard shard_for_key names.
            for i in range(40):
                key = b"f-%03d" % i
                home = shard_for_key(key, 3)
                expect = None if i == 0 else b"v-%03d" % i
                assert backends[home][0].get(key) == expect

            pairs = client.scan(b"f-", b"f-\xff", limit=10)
            assert pairs == [
                (b"f-%03d" % i, b"v-%03d" % i) for i in range(1, 11)
            ]

            batch = WriteBatch()
            for i in range(12):
                batch.put(b"fb-%02d" % i, b"w")
            client.write(batch)
            assert all(client.get(b"fb-%02d" % i) == b"w" for i in range(12))

            stats = client.stats()
            assert set(stats["endpoints"]) == {"0", "1", "2"}
            assert client.health()["state"] == "healthy"
            client.flush()
            client.compact_range()
            client.ping()
            assert client.committed_sequence() == sum(
                ep["committed_sequence"] for ep in stats["endpoints"].values()
            )  # flush/compact commit nothing after the stats snapshot
    finally:
        _stop_servers(backends)


def test_sharded_client_ring_routing():
    backends = _start_servers(3)
    try:
        endpoints = {
            f"node-{chr(97 + i)}": server.address
            for i, (_, server) in enumerate(backends)
        }
        with ShardedKVClient(endpoints) as client:
            for i in range(30):
                client.put(b"r-%03d" % i, b"v-%03d" % i)
            for i in range(30):
                assert client.get(b"r-%03d" % i) == b"v-%03d" % i
            assert client.scan(b"r-", b"r-\xff", limit=5) == [
                (b"r-%03d" % i, b"v-%03d" % i) for i in range(5)
            ]
    finally:
        _stop_servers(backends)


def test_sharded_client_rejects_bad_configurations():
    with pytest.raises(ServiceError):
        ShardedKVClient([])
    with pytest.raises(ServiceError):
        ShardedKVClient({})
    from repro.dist.sharding import HashRing

    with pytest.raises(ServiceError, match="named endpoints"):
        ShardedKVClient([("127.0.0.1", 1)], ring=HashRing(["x"]))
    with pytest.raises(ServiceError, match="without an endpoint"):
        ShardedKVClient(
            {"a": ("127.0.0.1", 1)}, ring=HashRing(["a", "ghost"])
        )
